"""Tests for trace-driven replay (the Dimemas-style what-if tool)."""

import numpy as np
import pytest

from repro.apps import CFDConfig, run_cfd
from repro.errors import TraceError
from repro.instrument import Tracer, lint_trace, profile
from repro.simmpi import (COMMODITY_CLUSTER, FAST_FABRIC, SP2,
                          NetworkModel, Simulator, replay)


@pytest.fixture(scope="module")
def recorded():
    """A small recorded CFD run on the SP2 model."""
    config = CFDConfig(grid=(128, 128), steps=2)
    result, tracer, measurements = run_cfd(config, n_ranks=8, network=SP2)
    return result, tracer, measurements


class TestReplayFidelity:
    def test_same_machine_reproduces_elapsed(self, recorded):
        result, tracer, _ = recorded
        replayed = replay(tracer.events, network=SP2)
        assert replayed.elapsed == pytest.approx(result.elapsed, rel=0.02)

    def test_compute_time_preserved_exactly(self, recorded):
        _, tracer, _ = recorded
        sink = Tracer()
        replay(tracer.events, network=FAST_FABRIC, trace_sink=sink.record)
        for rank in range(tracer.n_ranks):
            original = sum(event.duration
                           for event in tracer.events_of(rank)
                           if event.kind == "compute")
            new = sum(event.duration for event in sink.events_of(rank)
                      if event.kind == "compute")
            assert new == pytest.approx(original, rel=1e-12)

    def test_message_census_preserved(self, recorded):
        _, tracer, _ = recorded
        sink = Tracer()
        replay(tracer.events, network=SP2, trace_sink=sink.record)
        def census(events):
            sends = {}
            for event in events:
                if event.kind == "send":
                    key = (event.rank, event.partner, event.nbytes)
                    sends[key] = sends.get(key, 0) + 1
            return sends
        assert census(sink.events) == census(tracer.events)

    def test_replayed_trace_is_lint_clean(self, recorded):
        _, tracer, _ = recorded
        sink = Tracer()
        replay(tracer.events, network=COMMODITY_CLUSTER,
               trace_sink=sink.record)
        assert lint_trace(sink) == ()

    def test_regions_preserved(self, recorded):
        _, tracer, _ = recorded
        sink = Tracer()
        replay(tracer.events, network=SP2, trace_sink=sink.record)
        assert set(sink.regions()) == set(tracer.regions())


class TestWhatIfOnTheMachine:
    def test_faster_network_speeds_the_replay(self, recorded):
        result, tracer, _ = recorded
        fast = replay(tracer.events, network=FAST_FABRIC)
        assert fast.elapsed < result.elapsed

    def test_slower_network_slows_the_replay(self, recorded):
        result, tracer, _ = recorded
        slow = replay(tracer.events, network=COMMODITY_CLUSTER)
        assert slow.elapsed > result.elapsed

    def test_network_ordering_is_monotone(self, recorded):
        _, tracer, _ = recorded
        elapsed = [replay(tracer.events, network=net).elapsed
                   for net in (FAST_FABRIC, SP2, COMMODITY_CLUSTER)]
        assert elapsed[0] < elapsed[1] < elapsed[2]

    def test_compute_bound_floor(self, recorded):
        """No network can push the replay below the slowest rank's pure
        compute time."""
        _, tracer, _ = recorded
        free = NetworkModel(latency=0.0, bandwidth=1e30, overhead=0.0,
                            eager_threshold=1 << 30)
        replayed = replay(tracer.events, network=free)
        floor = max(sum(event.duration
                        for event in tracer.events_of(rank)
                        if event.kind == "compute")
                    for rank in range(tracer.n_ranks))
        assert replayed.elapsed >= floor - 1e-12

    def test_replay_analysis_pipeline(self, recorded):
        """The replayed trace feeds the methodology like any other."""
        from repro.core import analyze
        from repro.apps import LOOPS
        _, tracer, _ = recorded
        sink = Tracer()
        replay(tracer.events, network=COMMODITY_CLUSTER,
               trace_sink=sink.record)
        measurements = profile(sink, regions=LOOPS)
        analysis = analyze(measurements)
        assert analysis.breakdown.heaviest_region in LOOPS


class TestReplayValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            replay([])

    def test_deterministic(self, recorded):
        _, tracer, _ = recorded
        first = replay(tracer.events, network=SP2)
        second = replay(tracer.events, network=SP2)
        assert first.clocks == second.clocks

    def test_pure_compute_trace(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 1.0)
        tracer.record(1, "r", "computation", 0.0, 2.0)
        result = replay(tracer.events, network=SP2)
        assert result.elapsed == pytest.approx(2.0)
        assert result.messages == 0
