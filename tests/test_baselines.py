"""Unit tests for the baseline metrics and the threshold search."""

import numpy as np
import pytest

from repro.baselines import (ThresholdSearch, imbalance_percentage,
                             imbalance_time, percent_imbalance,
                             region_percent_imbalance, search, summarize)
from repro.core import MeasurementSet
from repro.errors import DispersionError, RankingError


class TestPercentImbalanceFamily:
    def test_balanced(self):
        assert percent_imbalance([2.0, 2.0, 2.0]) == pytest.approx(0.0)
        assert imbalance_time([2.0, 2.0]) == pytest.approx(0.0)
        assert imbalance_percentage([2.0, 2.0]) == pytest.approx(0.0)

    def test_straggler(self):
        values = [1.0, 1.0, 1.0, 2.0]
        assert percent_imbalance(values) == pytest.approx(2.0 / 1.25 - 1.0)
        assert imbalance_time(values) == pytest.approx(0.75)
        assert imbalance_percentage(values) == pytest.approx(
            (0.75 / 2.0) * (4 / 3))

    def test_fully_concentrated_percentage_is_one(self):
        assert imbalance_percentage([4.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0)

    def test_single_processor(self):
        assert imbalance_percentage([3.0]) == 0.0

    def test_zero_mean_rejected(self):
        with pytest.raises(DispersionError):
            percent_imbalance([0.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(DispersionError):
            imbalance_time([1.0, -1.0])

    def test_summarize_covers_performed_pairs(self, tiny_measurements):
        result = summarize(tiny_measurements)
        assert set(result["A"]) == {"X", "Y"}
        assert set(result["B"]) == {"X"}
        assert result["A"]["X"].percent == pytest.approx(0.0)
        assert result["A"]["Y"].percent == pytest.approx(3.0)

    def test_region_percent_imbalance(self, tiny_measurements):
        values = region_percent_imbalance(tiny_measurements)
        # Region A totals per processor: 6, 2, 2, 2 -> 6/3 - 1 = 1.
        assert values["A"] == pytest.approx(1.0)


class TestThresholdSearch:
    def test_finds_planted_bottleneck(self):
        times = np.zeros((2, 2, 4))
        times[0, 0] = [1.0, 1.0, 1.0, 3.0]       # hot processor 3
        times[0, 1] = [0.1, 0.1, 0.1, 0.1]
        times[1, 0] = [1.0, 1.0, 1.0, 1.0]
        ms = MeasurementSet(times, regions=("hot", "cold"),
                            activities=("X", "Y"))
        result = search(ms, activity_threshold=0.3,
                        processor_threshold=0.5)
        assert ("X", "hot", 3) in result.bottlenecks
        assert all(processor == 3
                   for _, _, processor in result.bottlenecks)

    def test_search_trail_levels(self, paper_measurements):
        result = search(paper_measurements)
        levels = {hypothesis.level for hypothesis in result.hypotheses}
        assert levels == {"program", "region", "processor"}

    def test_threshold_prunes(self, paper_measurements):
        narrow = search(paper_measurements, activity_threshold=0.6)
        wide = search(paper_measurements, activity_threshold=0.21)
        assert narrow.tested < wide.tested

    def test_flagged_regions_on_paper_data(self, paper_measurements):
        result = search(paper_measurements)
        flagged = result.flagged_regions()
        # Computation exceeds 20% of wall clock everywhere it dominates.
        assert ("computation", "loop 1") in flagged

    def test_misses_negligible_but_imbalanced_activity(self,
                                                       paper_measurements):
        # The contrast with the paper: synchronization is the most
        # imbalanced activity but only 0.1% of the program, so a
        # threshold search never even refines it.
        result = search(paper_measurements)
        assert all(hypothesis.focus[0] != "synchronization"
                   or hypothesis.level == "program"
                   for hypothesis in result.hypotheses)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(RankingError):
            ThresholdSearch(activity_threshold=0.0)
        with pytest.raises(RankingError):
            ThresholdSearch(processor_threshold=-0.1)
