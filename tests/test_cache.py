"""Tests for the shared content-keyed result cache (repro.cache).

The cache-key property the whole serving layer rests on: the key
depends only on *(namespace, version, parameters, input bytes)* — not
on how the bytes are fed in (file path vs in-memory, any chunking) —
and changes whenever any ingredient changes.  With ``max_bytes`` set
the cache must also stay under its cap by evicting least-recently-used
entries, with reads refreshing recency.
"""

import io
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ReportCache, content_key, iter_chunks


class TestContentKey:
    def test_path_and_data_agree(self, tmp_path):
        payload = b'{"rank": 0}\n' * 1000
        trace = tmp_path / "t.jsonl"
        trace.write_bytes(payload)
        assert content_key("ns", 1, {"a": 1}, path=trace) \
            == content_key("ns", 1, {"a": 1}, data=payload)

    def test_key_tracks_every_ingredient(self, tmp_path):
        base = content_key("ns", 1, {"a": 1}, data=b"xyz")
        assert content_key("ns", 1, {"a": 1}, data=b"xyz") == base
        assert content_key("other", 1, {"a": 1}, data=b"xyz") != base
        assert content_key("ns", 2, {"a": 1}, data=b"xyz") != base
        assert content_key("ns", 1, {"a": 2}, data=b"xyz") != base
        assert content_key("ns", 1, {"a": 1}, data=b"xyzz") != base

    def test_param_order_is_canonicalized(self):
        assert content_key("ns", 1, {"a": 1, "b": 2}) \
            == content_key("ns", 1, {"b": 2, "a": 1})

    def test_path_and_data_are_exclusive(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_bytes(b"x")
        with pytest.raises(ValueError):
            content_key("ns", 1, {}, path=trace, data=b"x")

    @given(data=st.binary(min_size=0, max_size=1 << 16),
           params=st.dictionaries(
               st.text(max_size=8),
               st.one_of(st.integers(), st.floats(allow_nan=False),
                         st.text(max_size=8), st.none()),
               max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_chunked_file_read_matches_eager_bytes(self, tmp_path_factory,
                                                   data, params):
        """The satellite invariant: hashing a file (read in bounded
        chunks internally) and hashing the same bytes eagerly yield the
        same key — the cache never depends on I/O granularity."""
        scratch = tmp_path_factory.mktemp("key") / "blob"
        scratch.write_bytes(data)
        assert content_key("ns", 3, params, path=scratch) \
            == content_key("ns", 3, params, data=data)


class TestReportCache:
    def test_round_trip(self, tmp_path):
        cache = ReportCache(tmp_path / "cache")
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, "payload")
        assert cache.get("k" * 64) == "payload"
        assert ("k" * 64) in cache
        assert len(cache) == 1
        assert list(cache.keys()) == ["k" * 64]

    def test_read_only_consumer_never_creates_the_directory(self, tmp_path):
        cache = ReportCache(tmp_path / "cache")
        assert cache.get("missing") is None
        assert len(cache) == 0
        assert not (tmp_path / "cache").exists()

    def test_put_is_atomic_no_scratch_left_behind(self, tmp_path):
        cache = ReportCache(tmp_path / "cache")
        cache.put("abc", "one")
        cache.put("abc", "two")
        assert cache.get("abc") == "two"
        assert [p.name for p in (tmp_path / "cache").iterdir()] \
            == ["abc.json"]

    def test_hit_miss_counters(self, tmp_path):
        cache = ReportCache(tmp_path / "cache")
        cache.get("a")
        cache.put("a", "x")
        cache.get("a")
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_concurrent_writers_of_one_key_never_tear(self, tmp_path):
        """N threads hammering the same key: every read observes one
        writer's complete payload, never a mix."""
        cache = ReportCache(tmp_path / "cache")
        payloads = [str(i) * 2048 for i in range(8)]
        barrier = threading.Barrier(len(payloads))

        def writer(text):
            barrier.wait()
            for _ in range(10):
                cache.put("contended", text)

        threads = [threading.Thread(target=writer, args=(text,))
                   for text in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.get("contended") in payloads


class TestIterChunks:
    def test_reassembles_exactly(self):
        payload = bytes(range(256)) * 37
        chunks = list(iter_chunks(io.BytesIO(payload), chunk_size=100))
        assert b"".join(chunks) == payload
        assert all(len(chunk) <= 100 for chunk in chunks)
        assert all(chunks)          # EOF terminates, no empty chunks

    def test_empty_stream_yields_nothing(self):
        assert list(iter_chunks(io.BytesIO(b""))) == []

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(io.BytesIO(b"x"), chunk_size=0))


class TestEviction:
    """The bounded cache: LRU eviction keeps the directory under cap."""

    @staticmethod
    def _age(cache, key, mtime):
        os.utime(cache.path(key), (mtime, mtime))

    def test_oldest_entry_evicted_when_over_cap(self, tmp_path):
        cache = ReportCache(tmp_path / "cache", max_bytes=250)
        for stamp, key in enumerate(("old", "mid", "new")):
            cache.put(key, "x" * 100)
            self._age(cache, key, 1_000_000 + stamp)
        cache.put("newest", "x" * 100)    # 400 bytes total: evict two
        assert cache.get("old") is None
        assert cache.get("mid") is None
        assert cache.get("new") == "x" * 100
        assert cache.get("newest") == "x" * 100
        assert cache.stats()["evictions"] == 2
        assert cache.total_bytes() <= 250

    def test_read_refreshes_recency(self, tmp_path):
        cache = ReportCache(tmp_path / "cache", max_bytes=250)
        for stamp, key in enumerate(("a", "b")):
            cache.put(key, "x" * 100)
            self._age(cache, key, 1_000_000 + stamp)
        assert cache.get("a") == "x" * 100   # now newer than "b"
        cache.put("c", "x" * 100)
        assert cache.get("b") is None
        assert cache.get("a") == "x" * 100
        assert cache.get("c") == "x" * 100

    def test_just_written_entry_survives_even_oversized(self, tmp_path):
        cache = ReportCache(tmp_path / "cache", max_bytes=10)
        cache.put("big", "x" * 100)
        assert cache.get("big") == "x" * 100
        assert cache.stats()["evictions"] == 0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ReportCache(tmp_path / "cache")
        for index in range(20):
            cache.put(f"key{index}", "x" * 1000)
        assert len(cache) == 20
        assert cache.stats()["evictions"] == 0
        assert cache.stats()["max_bytes"] is None

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ReportCache(tmp_path / "cache", max_bytes=0)

    def test_stats_report_size_and_cap(self, tmp_path):
        cache = ReportCache(tmp_path / "cache", max_bytes=1 << 20)
        cache.put("a", "x" * 123)
        stats = cache.stats()
        assert stats["bytes"] == 123
        assert stats["max_bytes"] == 1 << 20


class TestSweepRewire:
    """The sweep's cache behavior survives the factoring-out."""

    def test_trace_key_is_a_content_key(self, tmp_path):
        from dataclasses import asdict

        from repro.sweep import CACHE_FORMAT, SweepConfig, trace_key
        trace = tmp_path / "t.jsonl"
        trace.write_bytes(b'{"rank": 0}\n')
        config = SweepConfig(n_windows=4)
        assert trace_key(trace, config) == content_key(
            "repro-temporal-sweep", CACHE_FORMAT, asdict(config),
            path=trace)
