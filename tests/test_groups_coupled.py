"""Tests for communicator groups and the coupled multi-physics workload."""

import numpy as np
import pytest

from repro.apps import COUPLED_REGIONS, CoupledConfig, run_coupled
from repro.errors import CommunicatorError, WorkloadError
from repro.instrument import Tracer, lint_trace
from repro.simmpi import ANY_SOURCE, GroupCommunicator, NetworkModel, Simulator

FAST = NetworkModel(latency=1e-5, bandwidth=1e8, overhead=1e-7,
                    eager_threshold=4096)


def run(program, n_ranks=8):
    return Simulator(n_ranks, network=FAST).run(program)


class TestGroupBasics:
    def test_split_partitions_and_orders(self):
        seen = {}

        def program(comm):
            group = comm.split(lambda rank: rank % 2)
            seen[comm.rank] = (group.rank, group.size, group.members)
            yield from comm.compute(0.0)

        run(program, 6)
        assert seen[0] == (0, 3, (0, 2, 4))
        assert seen[3] == (1, 3, (1, 3, 5))

    def test_group_p2p_translates_ranks(self):
        received = {}

        def program(comm):
            group = comm.split(lambda rank: rank % 2)
            if group.rank == 0:
                yield from group.send(1, 64 + comm.rank)
            elif group.rank == 1:
                message = yield from group.recv(0)
                received[comm.rank] = (message.source, message.nbytes)

        run(program, 4)
        # Global rank 2 receives from global rank 0; 3 from 1.
        assert received[2] == (0, 64)
        assert received[3] == (1, 65)

    def test_group_collective_stays_inside(self):
        after = {}

        def program(comm):
            group = comm.split(lambda rank: "a" if rank < 2 else "b")
            if comm.rank >= 2:
                yield from comm.compute(1.0)       # group b is busy
            yield from group.allreduce(256)
            after[comm.rank] = yield from comm.elapsed()

        run(program, 4)
        # Group a's allreduce does NOT wait for group b.
        assert after[0] < 0.5 and after[1] < 0.5
        assert after[2] >= 1.0

    def test_group_barrier_scopes(self):
        after = {}

        def program(comm):
            group = comm.split(lambda rank: rank < 2)
            if comm.rank == 0:
                yield from comm.compute(1.0)
            yield from group.barrier()
            after[comm.rank] = yield from comm.elapsed()

        run(program, 4)
        assert after[1] >= 1.0          # same group as the slow rank
        assert after[2] < 0.5           # other group unaffected

    def test_singleton_group(self):
        def program(comm):
            group = comm.split(lambda rank: rank)      # every rank alone
            assert group.size == 1
            yield from group.barrier()
            yield from group.allreduce(128)

        result = run(program, 3)
        assert result.messages == 0

    def test_any_source_rejected_on_group(self):
        def program(comm):
            group = comm.split(lambda rank: rank % 2)
            if group.rank == 1:
                yield from group.recv(ANY_SOURCE)
            else:
                yield from group.send(1, 10)

        with pytest.raises(CommunicatorError):
            run(program, 4)

    def test_group_root_validation(self):
        def program(comm):
            group = comm.split(lambda rank: rank % 2)
            yield from group.bcast(5, 128)      # group has only 2 members

        with pytest.raises(CommunicatorError):
            run(program, 4)

    def test_membership_validation(self):
        from repro.simmpi import Communicator
        parent = Communicator(0, 4)
        with pytest.raises(CommunicatorError):
            GroupCommunicator(parent, [1, 2])       # caller not a member
        with pytest.raises(CommunicatorError):
            GroupCommunicator(parent, [0, 0, 1])    # duplicate
        with pytest.raises(CommunicatorError):
            GroupCommunicator(parent, [0, 9])       # out of range

    def test_group_traffic_carries_region_context(self):
        tracer = Tracer()

        def program(comm):
            group = comm.split(lambda rank: rank % 2)
            with comm.region("phase"):
                yield from group.allreduce(512)

        Simulator(4, network=FAST, trace_sink=tracer.record).run(program)
        assert all(event.region == "phase" for event in tracer.events)

    def test_group_traces_lint_clean(self):
        tracer = Tracer()

        def program(comm):
            group = comm.split(lambda rank: rank < comm.size // 2)
            with comm.region("r"):
                yield from group.alltoall(128)
                yield from group.reduce(0, 256)
                yield from comm.barrier()

        Simulator(8, network=FAST, trace_sink=tracer.record).run(program)
        assert lint_trace(tracer) == ()


class TestCoupledWorkload:
    @pytest.fixture(scope="class")
    def balanced(self):
        return run_coupled(CoupledConfig(imbalance_ratio=1.0), 16)

    @pytest.fixture(scope="class")
    def skewed(self):
        return run_coupled(CoupledConfig(imbalance_ratio=1.8), 16)

    def test_regions(self, skewed):
        assert skewed[2].regions == COUPLED_REGIONS

    def test_solve_regions_are_group_exclusive(self, skewed):
        _, _, measurements = skewed
        fluid = measurements.region_index("fluid solve")
        structure = measurements.region_index("structure solve")
        totals_fluid = measurements.times[fluid].sum(axis=0)
        totals_structure = measurements.times[structure].sum(axis=0)
        assert np.all(totals_fluid[8:] == 0.0)
        assert np.all(totals_structure[:8] == 0.0)

    def test_fast_group_waits_at_the_coupling(self, skewed):
        _, _, measurements = skewed
        couple = measurements.region_index("couple")
        totals = measurements.times[couple].sum(axis=0)
        structure_wait = totals[8:].mean()
        fluid_wait = totals[:8].mean()
        assert structure_wait > fluid_wait * 1.2

    def test_balanced_coupling_is_cheap(self, balanced, skewed):
        couple_balanced = balanced[2].region_times[
            balanced[2].region_index("couple")]
        couple_skewed = skewed[2].region_times[
            skewed[2].region_index("couple")]
        assert couple_skewed > couple_balanced

    def test_waiting_grows_with_the_ratio(self):
        waits = []
        for ratio in (1.0, 1.5, 2.0):
            _, _, measurements = run_coupled(
                CoupledConfig(imbalance_ratio=ratio), 8)
            couple = measurements.region_index("couple")
            waits.append(measurements.times[couple].sum(axis=0)[4:].mean())
        assert waits[0] < waits[1] < waits[2]

    def test_lint_clean(self, skewed):
        assert lint_trace(skewed[1]) == ()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            CoupledConfig(fluid_fraction=0.0)
        with pytest.raises(WorkloadError):
            CoupledConfig(imbalance_ratio=0.0)

    def test_deterministic(self):
        first = run_coupled(CoupledConfig(steps=2), 8)
        second = run_coupled(CoupledConfig(steps=2), 8)
        np.testing.assert_array_equal(first[2].times, second[2].times)


class TestNestedGroups:
    def test_split_of_split_translates_to_global(self):
        received = {}

        def program(comm):
            # First split: halves {0..3}, {4..7}; second split: parity
            # within each half.
            half = comm.split(lambda rank: rank < comm.size // 2)
            quarter = half.split(lambda rank: rank % 2)
            if quarter.size == 2:
                if quarter.rank == 0:
                    yield from quarter.send(1, 100 + comm.rank)
                else:
                    message = yield from quarter.recv(0)
                    received[comm.rank] = (message.source, message.nbytes)

        Simulator(8, network=FAST).run(program)
        # Global even ranks of each half pair up: 0->2, 1->3, 4->6, 5->7.
        assert received[2] == (0, 100)
        assert received[3] == (1, 101)
        assert received[6] == (4, 104)
        assert received[7] == (5, 105)

    def test_nested_collective_scopes(self):
        after = {}

        def program(comm):
            half = comm.split(lambda rank: rank < comm.size // 2)
            quarter = half.split(lambda rank: rank % 2)
            if comm.rank == 0:
                yield from comm.compute(1.0)
            yield from quarter.barrier()
            after[comm.rank] = yield from comm.elapsed()

        Simulator(8, network=FAST).run(program)
        # Only rank 0's quarter ({0, 2}) waits for it.
        assert after[2] >= 1.0
        assert after[1] < 0.5 and after[4] < 0.5

    def test_nested_groups_lint_clean(self):
        tracer = Tracer()

        def program(comm):
            half = comm.split(lambda rank: rank < comm.size // 2)
            quarter = half.split(lambda rank: rank % 2)
            with comm.region("nested"):
                yield from quarter.allreduce(512)
                yield from half.allreduce(512)
                yield from comm.barrier()

        Simulator(8, network=FAST, trace_sink=tracer.record).run(program)
        assert lint_trace(tracer) == ()
        assert all(event.region == "nested" for event in tracer.events)


class TestGroupProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4,
                    max_size=10))
    def test_random_partitions_run_clean(self, colors):
        """Any SPMD color partition yields a deadlock-free run whose
        trace passes every lint invariant, and group collectives touch
        only intra-group pairs."""
        def program(comm):
            group = comm.split(lambda rank: colors[rank])
            with comm.region("r"):
                yield from comm.compute(1e-4 * (comm.rank + 1))
                yield from group.allreduce(256)
                yield from group.barrier()
                yield from comm.barrier()

        tracer = Tracer()
        Simulator(len(colors), network=FAST,
                  trace_sink=tracer.record).run(program)
        assert lint_trace(tracer) == ()
        # No pre-global-barrier p2p message crosses a color boundary.
        for event in tracer.events:
            if event.kind == "send" and event.partner >= 0 and \
                    event.activity in ("collective",):
                assert colors[event.rank] == colors[event.partner]
