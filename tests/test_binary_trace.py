"""Tests for the binary trace format."""

import pytest

from repro.errors import TraceError, TraceWarning
from repro.instrument import (TraceEvent, read_any, read_binary_trace,
                              sniff_format, write_binary_trace, write_trace)


def sample_events():
    return [
        TraceEvent(0, "loop 1", "computation", 0.0, 1.5),
        TraceEvent(1, "loop 1", "point-to-point", 0.25, 2.0, kind="send",
                   nbytes=123456789, partner=0),
        TraceEvent(0, "loop 2", "synchronization", 1.5, 1.75, kind="wait",
                   nbytes=64, partner=1),
    ]


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.rptb"
        assert write_binary_trace(path, sample_events()) == 3
        assert read_binary_trace(path) == sample_events()

    def test_empty(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, [])
        assert read_binary_trace(path) == []

    def test_unicode_names(self, tmp_path):
        events = [TraceEvent(0, "Schleife-1 é", "computation",
                             0.0, 1.0)]
        path = tmp_path / "t.rptb"
        write_binary_trace(path, events)
        assert read_binary_trace(path) == events

    def test_smaller_than_jsonl(self, tmp_path, cfd_run):
        _, tracer, _ = cfd_run
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.rptb"
        write_trace(jsonl, tracer.events)
        write_binary_trace(binary, tracer.events)
        assert binary.stat().st_size < jsonl.stat().st_size / 2

    def test_binary_roundtrip_of_simulator_trace(self, tmp_path, cfd_run):
        _, tracer, _ = cfd_run
        path = tmp_path / "t.rptb"
        write_binary_trace(path, tracer.events)
        assert tuple(read_binary_trace(path)) == tracer.events


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            read_binary_trace(tmp_path / "none.rptb")

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "t.rptb"
        path.write_bytes(b"NOPE" + b"\x00" * 30)
        with pytest.raises(TraceError):
            read_binary_trace(path)

    def test_truncated_records_salvaged(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.warns(TraceWarning, match="truncated"):
            events = read_binary_trace(path)
        assert events == sample_events()[:-1]
        with pytest.raises(TraceError) as info:
            read_binary_trace(path, on_error="raise")
        assert "truncated" in str(info.value)

    def test_too_short(self, tmp_path):
        path = tmp_path / "t.rptb"
        path.write_bytes(b"RP")
        with pytest.raises(TraceError):
            read_binary_trace(path)

    def test_trailing_nul_padding_is_not_damage(self, tmp_path):
        """Block-padded storage appends NULs after the records; both
        modes read through them cleanly — the binary mirror of the
        JSONL reader's blank-line tolerance."""
        import warnings
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes() + b"\x00" * 4096)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert read_binary_trace(path) == sample_events()
            assert read_binary_trace(
                path, on_error="raise") == sample_events()

    def test_non_nul_trailing_bytes_are_damage(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes() + b"\x00extra")
        with pytest.warns(TraceWarning, match="truncated"):
            assert read_binary_trace(path) == sample_events()
        with pytest.raises(TraceError):
            read_binary_trace(path, on_error="raise")


class TestSniffAndDispatch:
    def test_sniff_binary(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        assert sniff_format(path) == "binary"
        assert read_any(path) == sample_events()

    def test_sniff_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        assert sniff_format(path) == "jsonl"
        assert read_any(path) == sample_events()

    def test_sniff_gzip_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_trace(path, sample_events())
        assert sniff_format(path) == "jsonl"
        assert read_any(path) == sample_events()

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "mystery.dat"
        path.write_bytes(b"garbage")
        assert sniff_format(path) == "unknown"
        with pytest.raises(TraceError):
            read_any(path)
