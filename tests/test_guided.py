"""Tests for the guided drill-down search."""

import numpy as np
import pytest

from repro.baselines import drill_down, search
from repro.core import MeasurementSet


class TestDrillDown:
    def test_finds_planted_hotspot(self):
        times = np.ones((2, 2, 4))
        times[1, 1, 2] = 9.0         # region 2, activity 2, processor 3
        ms = MeasurementSet(times, regions=("r1", "r2"),
                            activities=("X", "Y"))
        result = drill_down(ms)
        assert result.activity == "Y"
        assert result.region == "r2"
        assert result.processor == 2
        assert result.cost == 3

    def test_path_structure(self, paper_measurements):
        result = drill_down(paper_measurements)
        assert [step.level for step in result.steps] == \
            ["activity", "region", "processor"]
        assert "->" in result.describe()

    def test_paper_descent(self, paper_measurements):
        """On the paper's data the descent lands on computation in
        loop 1 — the scaled indices' conclusion — and fingers
        processor 2 (the loop's hot rank)."""
        result = drill_down(paper_measurements)
        assert result.activity == "computation"
        assert result.region == "loop 1"
        assert result.processor == 1

    def test_orders_of_magnitude_cheaper_than_threshold_search(
            self, paper_measurements):
        baseline = search(paper_measurements)
        guided = drill_down(paper_measurements)
        assert guided.cost * 10 < baseline.tested

    def test_deterministic(self, paper_measurements):
        first = drill_down(paper_measurements)
        second = drill_down(paper_measurements)
        assert first == second

    def test_alternative_index(self, paper_measurements):
        result = drill_down(paper_measurements, index="cv")
        assert result.cost == 3
