"""Unit tests for the counting-parameter profiles."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.instrument import Tracer, count_profile


def make_tracer():
    tracer = Tracer()
    # rank 0 sends twice in r1 (1000 + 500 bytes) and computes.
    tracer.record(0, "r1", "computation", 0.0, 1.0)
    tracer.record(0, "r1", "point-to-point", 1.0, 1.1, kind="send",
                  nbytes=1000, partner=1)
    tracer.record(0, "r1", "point-to-point", 1.1, 1.2, kind="send",
                  nbytes=500, partner=1)
    # rank 1 receives them (receives must not double-count messages).
    tracer.record(1, "r1", "point-to-point", 0.0, 1.2, kind="recv",
                  nbytes=1000, partner=0)
    tracer.record(1, "r1", "point-to-point", 1.2, 1.3, kind="recv",
                  nbytes=500, partner=0)
    # rank 1 sends one collective-internal message in r2.
    tracer.record(1, "r2", "collective", 1.3, 1.4, kind="send",
                  nbytes=2048, partner=0)
    tracer.record(0, "r2", "collective", 1.2, 1.5, kind="recv",
                  nbytes=2048, partner=1)
    return tracer


class TestCountProfile:
    def test_message_counts(self):
        ms = count_profile(make_tracer(), "messages")
        j = ms.activity_index("point-to-point")
        np.testing.assert_allclose(ms.times[0, j, :], [2.0, 0.0])
        k = ms.activity_index("collective")
        np.testing.assert_allclose(ms.times[1, k, :], [0.0, 1.0])

    def test_bytes_counts(self):
        ms = count_profile(make_tracer(), "bytes")
        j = ms.activity_index("point-to-point")
        np.testing.assert_allclose(ms.times[0, j, :], [1500.0, 0.0])

    def test_event_counts_include_everything(self):
        ms = count_profile(make_tracer(), "events")
        assert ms.times.sum() == 7.0
        i = ms.activity_index("computation")
        assert ms.times[0, i, 0] == 1.0

    def test_sum_aggregation(self):
        ms = count_profile(make_tracer(), "messages")
        assert ms.aggregation == "sum"
        j = ms.activity_index("point-to-point")
        assert ms.region_activity_times[0, j] == 2.0

    def test_views_apply_to_counters(self):
        from repro.core import dispersion_matrix
        ms = count_profile(make_tracer(), "messages")
        matrix = dispersion_matrix(ms)
        j = ms.activity_index("point-to-point")
        # All messages from rank 0: standardized (1, 0), maximally
        # concentrated for P = 2 -> euclidean sqrt(0.5).
        assert matrix[0, j] == pytest.approx(np.sqrt(0.5))

    def test_unknown_counter_rejected(self):
        with pytest.raises(TraceError):
            count_profile(make_tracer(), "flops")

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            count_profile(Tracer())

    def test_nothing_to_count_rejected(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 1.0)   # no sends
        with pytest.raises(TraceError):
            count_profile(tracer, "messages")

    def test_region_restriction(self):
        ms = count_profile(make_tracer(), "messages", regions=("r1",))
        assert ms.regions == ("r1",)

    def test_cfd_byte_counters(self, cfd_run):
        """On the CFD run the byte counters expose the halo structure:
        interior ranks send more halo bytes than the edge ranks."""
        _, tracer, _ = cfd_run
        ms = count_profile(tracer, "bytes", regions=("loop 3",))
        j = ms.activity_index("point-to-point")
        bytes_sent = ms.times[0, j, :]
        assert bytes_sent[0] < bytes_sent[1]
        assert bytes_sent[-1] < bytes_sent[-2]
