"""Tests for the self-observability layer (repro.obs).

The load-bearing guarantees:

* spans cost (nearly) nothing while disabled and record begin/end/
  worker/attributes faithfully while enabled — including spans from
  multiprocessing shard and sweep workers, which travel home through
  the spool directory;
* the self-trace serialization round-trips through the ordinary trace
  readers, so ``repro analyze`` accepts the tool's own profile;
* structured log records are one JSON object per line and carry the
  thread's request ID; the daemon echoes ``X-Request-Id`` end to end;
* ``/metrics`` speaks Prometheus text exposition under content
  negotiation while the bare-JSON contract stays byte-compatible;
* :class:`~repro.serve.metrics.LatencyWindow` reports the mean of the
  *retained window* — consistent with its quantiles — while keeping
  the lifetime totals for Retry-After and the Prometheus ``_sum``.
"""

import io
import json
import math
import os

import pytest

from repro.errors import ReproError
from repro.obs import (JsonLogger, NullLogger, PROM_CONTENT_TYPE, Span,
                       render_prometheus, render_span_table,
                       spans_to_tracer, summarize_spans, worker_ranks,
                       write_selftrace)
from repro.obs import log as obslog
from repro.obs import spans as obspans
from repro.obs.prom import escape_label_value, format_value, metric_name
from repro.obs.selftrace import self_imbalance
from repro.serve.metrics import LatencyWindow, ServiceMetrics


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with recording off."""
    obspans.disable()
    yield
    obspans.disable()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        first = obspans.span("stage")
        second = obspans.span("other", worker="w", detail=1)
        assert first is second          # no allocation on the hot path
        with first as live:
            assert live.set(more=2) is live
        assert obspans.drain() == []

    def test_enabled_span_records_interval_and_attributes(self):
        obspans.enable()
        with obspans.span("stage", activity="read", n=3) as live:
            live.set(m=4)
        (span,) = obspans.drain()
        assert span.name == "stage"
        assert span.activity == "read"
        assert span.attributes == {"n": 3, "m": 4}
        assert span.end >= span.begin
        assert span.worker == obspans.DEFAULT_WORKER

    def test_nested_spans_both_recorded(self):
        obspans.enable()
        with obspans.span("outer"):
            with obspans.span("inner"):
                pass
        spans = obspans.drain()
        names = {span.name for span in spans}
        assert names == {"outer", "inner"}
        outer = next(s for s in spans if s.name == "outer")
        inner = next(s for s in spans if s.name == "inner")
        assert outer.begin <= inner.begin and inner.end <= outer.end

    def test_span_recorded_even_when_body_raises(self):
        obspans.enable()
        with pytest.raises(ValueError):
            with obspans.span("doomed"):
                raise ValueError("boom")
        (span,) = obspans.drain()
        assert span.name == "doomed"

    def test_worker_label_is_thread_local(self):
        import threading
        obspans.enable()
        seen = {}

        def task(label):
            with obspans.worker_scope(label):
                seen[label] = obspans.current_worker()
                with obspans.span("work"):
                    pass

        threads = [threading.Thread(target=task, args=(f"w{i}",))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"w0": "w0", "w1": "w1", "w2": "w2"}
        workers = {span.worker for span in obspans.drain()}
        assert workers == {"w0", "w1", "w2"}

    def test_drain_sorts_by_begin_and_clears(self):
        obspans.enable()
        with obspans.span("a"):
            pass
        with obspans.span("b"):
            pass
        spans = obspans.drain()
        assert [span.name for span in spans] == ["a", "b"]
        assert spans[0].begin <= spans[1].begin
        assert obspans.drain() == []

    def test_span_dict_round_trip(self):
        span = Span(name="s", begin=1.0, end=2.5, worker="w",
                    activity="merge", attributes={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span

    def test_spool_round_trip_simulates_worker_process(self, tmp_path):
        """A worker with only SPOOL_ENV set spools; drain merges."""
        spool = tmp_path / "spool"
        obspans.enable(str(spool))
        assert os.environ[obspans.SPOOL_ENV] == str(spool)
        # Simulate the worker side: recording off locally, env set.
        recorder = obspans._RECORDER
        recorder.enabled = False
        with obspans.worker_scope("shard-7"):
            with obspans.span("shard_accumulate"):
                pass
        assert list(spool.glob("spans-*.jsonl"))
        recorder.enabled = True       # back to the parent's view
        (span,) = obspans.drain()
        assert span.worker == "shard-7"
        assert not list(spool.glob("spans-*.jsonl"))   # consumed

    def test_disable_removes_owned_spool_and_env(self):
        obspans.enable()
        spool = obspans._RECORDER.spool_dir
        assert spool and os.path.isdir(spool)
        obspans.disable()
        assert not os.path.isdir(spool)
        assert obspans.SPOOL_ENV not in os.environ

    def test_shard_workers_spans_reach_the_parent(self, tmp_path):
        from repro.calibrate import synthesize_paper_trace
        from repro.shards import shard_accumulate
        trace = tmp_path / "t.jsonl"
        synthesize_paper_trace(trace)
        obspans.enable()
        shard_accumulate(str(trace), jobs=2)
        spans = obspans.drain()
        names = {span.name for span in spans}
        assert {"shard_plan", "shard_fanout", "shard_merge",
                "shard_accumulate", "stream_decode"} <= names
        workers = {span.worker for span in spans
                   if span.name == "shard_accumulate"}
        assert any(worker.startswith("shard-") for worker in workers)

    def test_streaming_is_uninstrumented_when_disabled(self, tmp_path):
        from repro.calibrate import synthesize_paper_trace
        from repro.instrument.stream import instrument_chunks, iter_any
        trace = tmp_path / "t.jsonl"
        synthesize_paper_trace(trace)
        chunks = iter_any(str(trace))
        assert instrument_chunks(chunks, "stage", trace) is chunks

    def test_summary_and_table(self):
        spans = [Span("a", 0.0, 1.0, worker="w0"),
                 Span("a", 0.0, 3.0, worker="w1"),
                 Span("b", 1.0, 1.5)]
        by_name = {s.name: s for s in summarize_spans(spans)}
        assert by_name["a"].count == 2
        assert by_name["a"].total == pytest.approx(4.0)
        assert by_name["a"].largest == pytest.approx(3.0)
        assert by_name["a"].workers == 2
        table = render_span_table(spans)
        assert "stage" in table and "a" in table and "b" in table

    def test_empty_table_raises(self):
        with pytest.raises(ReproError):
            render_span_table([])


# ----------------------------------------------------------------------
# Self-traces (dogfooding)
# ----------------------------------------------------------------------
class TestSelfTrace:
    SPANS = [Span("plan", 10.0, 10.5, worker="main", activity="plan"),
             Span("work", 10.5, 12.0, worker="shard-0"),
             Span("work", 10.6, 13.0, worker="shard-1"),
             Span("merge", 13.0, 13.2, worker="main", activity="merge")]

    def test_worker_ranks_dense_first_appearance(self):
        assert worker_ranks(self.SPANS) == {"main": 0, "shard-0": 1,
                                            "shard-1": 2}

    def test_tracer_shifts_origin_and_maps_fields(self):
        tracer = spans_to_tracer(self.SPANS)
        assert len(tracer) == 4
        first = min(tracer.events, key=lambda event: event.begin)
        assert first.begin == 0.0
        regions = {event.region for event in tracer.events}
        assert regions == {"plan", "work", "merge"}
        assert all(event.kind == "compute" for event in tracer.events)

    def test_empty_spans_raise(self):
        with pytest.raises(ReproError):
            spans_to_tracer([])

    def test_selftrace_round_trips_through_read_trace(self, tmp_path):
        from repro.instrument import profile, read_trace, read_tracer
        path = tmp_path / "self.jsonl"
        count = write_selftrace(path, self.SPANS)
        assert count == 4
        assert len(read_trace(path)) == 4
        measurements = profile(read_tracer(path))
        assert "work" in measurements.regions
        assert measurements.n_processors == 3

    def test_self_imbalance_is_nan_free(self):
        pairs = self_imbalance(self.SPANS)
        assert pairs and all(math.isfinite(value) for _, value in pairs)
        by_stage = dict(pairs)
        # Two workers with different durations: some dispersion.
        assert by_stage["work"] > 0.0

    def test_self_imbalance_single_worker_is_zero_not_nan(self):
        spans = [Span("only", 0.0, 1.0, worker="main")]
        assert self_imbalance(spans) == [("only", 0.0)]

    def test_cli_self_verb_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "self.jsonl"
        assert main(["self", "--jobs", "1",
                     "--trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Pipeline profile" in stdout
        assert "per-stage self-imbalance" in stdout
        assert main(["analyze", str(out)]) == 0

    def test_cli_analyze_profile_prints_stage_table(self, tmp_path,
                                                    capsys):
        from repro.calibrate import synthesize_paper_trace
        from repro.cli import main
        trace = tmp_path / "t.jsonl"
        synthesize_paper_trace(trace)
        assert main(["analyze", "--profile", "--jobs", "2",
                     str(trace)]) == 0
        stdout = capsys.readouterr().out
        assert "Pipeline profile" in stdout
        assert "shard_accumulate" in stdout

    def test_cli_profile_does_not_change_report_bytes(self, tmp_path,
                                                      capsys):
        from repro.calibrate import synthesize_paper_trace
        from repro.cli import main
        trace = tmp_path / "t.jsonl"
        synthesize_paper_trace(trace)
        assert main(["analyze", str(trace)]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", "--profile", str(trace)]) == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain.rstrip("\n"))
        assert "Pipeline profile" in profiled
        assert "Pipeline profile" not in plain


# ----------------------------------------------------------------------
# Structured logging and request IDs
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, name="test", clock=lambda: 12.5)
        logger.info("started", port=80)
        logger.error("failed", reason="boom")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {"ts": 12.5, "level": "info", "logger": "test",
                         "event": "started", "port": 80}
        assert second["level"] == "error"
        assert second["reason"] == "boom"

    def test_request_id_picked_up_from_thread_scope(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 0.0)
        with obslog.request_scope("abc123"):
            logger.info("inside")
        logger.info("outside")
        inside, outside = (json.loads(line)
                           for line in stream.getvalue().splitlines())
        assert inside["request_id"] == "abc123"
        assert "request_id" not in outside

    def test_request_scope_restores_previous(self):
        obslog.set_request_id("outer")
        with obslog.request_scope("inner"):
            assert obslog.get_request_id() == "inner"
        assert obslog.get_request_id() == "outer"
        obslog.set_request_id(None)

    def test_unserializable_values_are_stringified(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 0.0)
        logger.info("odd", value=object())
        record = json.loads(stream.getvalue())
        assert isinstance(record["value"], str)

    def test_broken_stream_is_ignored(self):
        class Broken:
            def write(self, text):
                raise OSError("gone")

            def flush(self):
                raise OSError("gone")

        logger = JsonLogger(Broken(), clock=lambda: 0.0)
        record = logger.info("still_returns")      # must not raise
        assert record["event"] == "still_returns"

    def test_child_shares_stream(self):
        stream = io.StringIO()
        parent = JsonLogger(stream, name="serve", clock=lambda: 0.0)
        parent.child("jobs").info("queued")
        assert json.loads(stream.getvalue())["logger"] == "jobs"

    def test_null_logger_writes_nothing_anywhere(self, capsys):
        logger = NullLogger()
        assert logger.child("x") is logger
        record = logger.info("evt", a=1)
        assert record["a"] == 1
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_new_request_ids_are_unique(self):
        ids = {obslog.new_request_id() for _ in range(64)}
        assert len(ids) == 64


# ----------------------------------------------------------------------
# Latency window consistency (the satellite fix)
# ----------------------------------------------------------------------
class TestLatencyWindow:
    def test_windowed_mean_matches_retained_samples(self):
        window = LatencyWindow(maxlen=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            window.observe(value)
        # The window retains (2, 3, 4, 100): mean must describe those,
        # consistently with the quantiles computed from them.
        snapshot = window.snapshot()
        assert snapshot["mean_seconds"] == pytest.approx(109.0 / 4)
        assert snapshot["count"] == 5
        assert snapshot["total_seconds"] == pytest.approx(110.0)
        assert window.mean() == pytest.approx(109.0 / 4)

    def test_lifetime_mean_still_available(self):
        window = LatencyWindow(maxlen=2)
        for value in (1.0, 1.0, 10.0):
            window.observe(value)
        assert window.total == pytest.approx(12.0)
        assert window.count == 3

    def test_empty_window_snapshot(self):
        snapshot = LatencyWindow().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_seconds"] is None
        assert snapshot["p50_seconds"] is None
        assert snapshot["total_seconds"] == 0.0

    def test_quantiles_and_mean_agree_on_small_windows(self):
        window = LatencyWindow(maxlen=8)
        window.observe(2.0)
        snapshot = window.snapshot()
        assert snapshot["mean_seconds"] == snapshot["p50_seconds"] == 2.0

    def test_service_metrics_retry_after_uses_lifetime_mean(self):
        metrics = ServiceMetrics()
        window = LatencyWindow(maxlen=1)
        metrics._latencies["analyze"] = window
        window.observe(4.0)
        window.observe(2.0)
        # Windowed mean (last sample only) is 2; lifetime mean is 3.
        assert window.mean() == pytest.approx(2.0)
        assert metrics.mean_seconds("analyze") == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_metric_name_sanitizes(self):
        assert metric_name("repro", "jobs-active") == "repro_jobs_active"
        assert metric_name("repro", "a.b c") == "repro_a_b_c"
        name = metric_name("9repro", "x")
        assert name[0] not in "0123456789"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_format_value(self):
        assert format_value(True) == "1"
        assert format_value(3.0) == "3"
        assert format_value(2.5) == "2.5"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"

    def test_render_counters_gauges_and_summaries(self):
        metrics = ServiceMetrics()
        metrics.count("requests_total")
        metrics.count("jobs_done")
        metrics.gauge("jobs_active", 2)
        metrics.observe("analyze", 0.5)
        text = render_prometheus(metrics.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_requests_total 1" in lines
        assert "repro_jobs_done_total 1" in lines
        assert "repro_jobs_active 2" in lines
        assert ('repro_latency_seconds{family="analyze",'
                'quantile="0.5"} 0.5') in lines
        assert 'repro_latency_seconds_count{family="analyze"} 1' in lines
        assert 'repro_latency_seconds_sum{family="analyze"} 0.5' in lines
        # One TYPE declaration per family, even with many counters.
        assert sum(1 for line in lines
                   if line.startswith("# TYPE repro_latency_seconds ")) == 1

    def test_extra_sections_flatten_to_gauges(self):
        snapshot = {"uptime_seconds": 1.5, "counters": {}, "gauges": {},
                    "latency": {},
                    "store": {"n_traces": 3, "bytes": 1024,
                              "name": "skipped-not-numeric"}}
        text = render_prometheus(snapshot)
        assert "repro_store_n_traces 3" in text
        assert "repro_store_bytes 1024" in text
        assert "skipped" not in text

    def test_uptime_present(self):
        text = render_prometheus(ServiceMetrics().snapshot())
        assert "repro_uptime_seconds" in text


# ----------------------------------------------------------------------
# Daemon integration: negotiation and request IDs
# ----------------------------------------------------------------------
@pytest.fixture()
def server(tmp_path):
    from repro.serve import AnalysisServer
    with AnalysisServer(tmp_path / "store", port=0, workers=1) as daemon:
        yield daemon


def _raw(server, method, path, headers=None, body=None):
    import http.client
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        conn.close()


class TestServeObservability:
    def test_metrics_defaults_to_json(self, server):
        status, headers, body = _raw(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert "counters" in payload and "latency" in payload

    def test_metrics_negotiates_prometheus_text(self, server):
        status, headers, body = _raw(
            server, "GET", "/metrics",
            headers={"Accept": "text/plain"})
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert "repro_requests_total" in text

    def test_openmetrics_accept_also_negotiates_text(self, server):
        status, headers, _ = _raw(
            server, "GET", "/metrics",
            headers={"Accept": "application/openmetrics-text"})
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE

    def test_explicit_json_accept_stays_json(self, server):
        status, headers, _ = _raw(
            server, "GET", "/metrics",
            headers={"Accept": "application/json"})
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")

    def test_request_id_echoed_when_supplied(self, server):
        _, headers, _ = _raw(server, "GET", "/healthz",
                             headers={"X-Request-Id": "cafe01"})
        assert headers["X-Request-Id"] == "cafe01"

    def test_request_id_generated_when_absent(self, server):
        _, first_headers, _ = _raw(server, "GET", "/healthz")
        _, second_headers, _ = _raw(server, "GET", "/healthz")
        first = first_headers["X-Request-Id"]
        second = second_headers["X-Request-Id"]
        assert first and second and first != second

    def test_error_body_carries_request_id(self, server):
        status, headers, body = _raw(server, "GET", "/nope",
                                     headers={"X-Request-Id": "feed02"})
        assert status == 404
        assert headers["X-Request-Id"] == "feed02"
        assert json.loads(body)["request_id"] == "feed02"

    def test_client_generates_stable_id_across_retries(self):
        from repro.serve.client import ServeClient
        client = ServeClient("http://127.0.0.1:9", retries=0)
        with pytest.raises(ReproError):
            client.health()

    def test_verbose_daemon_writes_json_access_log(self, tmp_path,
                                                   capsys):
        from repro.serve import AnalysisServer
        with AnalysisServer(tmp_path / "store", port=0, workers=1,
                            verbose=True) as daemon:
            _raw(daemon, "GET", "/healthz",
                 headers={"X-Request-Id": "beef03"})
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines()
                   if line.startswith("{")]
        access = [r for r in records if r.get("event") == "request"]
        assert access
        assert access[-1]["path"] == "/healthz"
        assert access[-1]["status"] == 200
        assert access[-1]["request_id"] == "beef03"
