"""Unit tests for the network model."""

import pytest

from repro.errors import SimulationError
from repro.simmpi import ZERO_COST, NetworkModel


class TestNetworkModel:
    def test_transfer_time_formula(self):
        model = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert model.transfer_time(1000, 0, 1) == pytest.approx(2e-3)

    def test_zero_bytes_costs_latency(self):
        model = NetworkModel(latency=5e-4, bandwidth=1e6)
        assert model.transfer_time(0, 0, 1) == pytest.approx(5e-4)

    def test_eager_threshold(self):
        model = NetworkModel(eager_threshold=100)
        assert model.is_eager(100)
        assert not model.is_eager(101)

    def test_link_scale(self):
        model = NetworkModel(latency=1e-3, bandwidth=1e6,
                             link_scale=lambda s, d: 2.0 if d == 3 else 1.0)
        assert model.transfer_time(0, 0, 3) == pytest.approx(2e-3)
        assert model.transfer_time(0, 0, 1) == pytest.approx(1e-3)

    def test_rejects_negative_latency(self):
        with pytest.raises(SimulationError):
            NetworkModel(latency=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(SimulationError):
            NetworkModel(bandwidth=0.0)

    def test_rejects_negative_size(self):
        with pytest.raises(SimulationError):
            NetworkModel().transfer_time(-1, 0, 1)

    def test_rejects_nonpositive_link_scale(self):
        model = NetworkModel(link_scale=lambda s, d: 0.0)
        with pytest.raises(SimulationError):
            model.transfer_time(10, 0, 1)

    def test_zero_cost_model(self):
        assert ZERO_COST.transfer_time(10 ** 9, 0, 1) < 1e-12
        assert ZERO_COST.is_eager(10 ** 9)
