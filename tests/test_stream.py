"""Unit tests for the chunked trace iterators and the shard planner.

The streaming readers' contract: concatenating every yielded chunk
reproduces the eager reader exactly (events, salvage behaviour, blank
line / NUL padding tolerance), with no chunk larger than ``chunk_size``
— and span iterators that tile a file partition its events exactly
once, no matter where the cut points fall.
"""

import gzip
import warnings

import pytest

from repro.errors import TraceError, TraceWarning
from repro.instrument import (TraceEvent, iter_any, iter_binary_span,
                              iter_binary_trace, iter_trace,
                              iter_trace_span, read_binary_trace,
                              read_trace, write_binary_trace, write_trace)
from repro.shards import Shard, accumulate_shard, plan_shards


def sample_events(count=23):
    return [
        TraceEvent(rank % 4, f"region {rank % 3}",
                   ("computation", "point-to-point")[rank % 2],
                   float(rank), float(rank) + 0.5,
                   kind=("compute", "send")[rank % 2],
                   nbytes=rank * 10, partner=(rank + 1) % 4)
        for rank in range(count)
    ]


def drain(chunks):
    """Concatenate a chunk iterator into one event list."""
    events = []
    for chunk in chunks:
        events.extend(chunk)
    return events


class TestIterTrace:
    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 23, 1000])
    def test_concatenation_equals_eager(self, tmp_path, chunk_size):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        assert drain(iter_trace(path, chunk_size)) == read_trace(path)

    def test_chunks_are_bounded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        sizes = [len(chunk) for chunk in iter_trace(path, chunk_size=5)]
        assert all(size <= 5 for size in sizes)
        assert sizes == [5, 5, 5, 5, 3]

    def test_gzip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_trace(path, sample_events())
        assert drain(iter_trace(path, 4)) == sample_events()

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            next(iter_trace(tmp_path / "none.jsonl"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            drain(iter_trace(path))

    def test_bad_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(TraceError):
            drain(iter_trace(path))

    def test_bad_chunk_size(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        with pytest.raises(TraceError, match="chunk_size"):
            next(iter_trace(path, chunk_size=0))

    def test_bad_on_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        with pytest.raises(TraceError, match="on_error"):
            next(iter_trace(path, on_error="ignore"))

    def test_truncation_salvages_with_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.warns(TraceWarning, match="salvaged"):
            got = drain(iter_trace(path, 4))
        assert got == sample_events()[:-1]

    def test_truncation_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="truncated"):
            drain(iter_trace(path, 4, on_error="raise"))

    def test_corrupt_line_salvages_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        lines = path.read_text().splitlines()
        lines[5] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(TraceWarning):
            got = drain(iter_trace(path, 3))
        assert got == sample_events()[:4]


class TestBlankLineParity:
    """A blank line is not damage — in either reader, in either mode
    (the JSONL mirror of the binary format's NUL-padding tolerance)."""

    def _with_blanks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events(6))
        lines = path.read_text().splitlines()
        # interior blank, whitespace-only line, and trailing blanks
        lines.insert(3, "")
        lines.insert(5, "   \t")
        path.write_text("\n".join(lines) + "\n\n\n")
        return path

    def test_eager_skips_blanks_in_both_modes(self, tmp_path):
        path = self._with_blanks(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert read_trace(path) == sample_events(6)
            assert read_trace(path, on_error="raise") == sample_events(6)

    def test_streaming_skips_blanks_in_both_modes(self, tmp_path):
        path = self._with_blanks(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert drain(iter_trace(path, 2)) == sample_events(6)
            assert drain(iter_trace(path, 2,
                                    on_error="raise")) == sample_events(6)


class TestNulPaddingParity:
    """Trailing NUL padding (block-padded storage) is not damage — in
    either binary reader, in either mode; any other trailing byte is."""

    def _padded(self, tmp_path, padding=b"\x00" * 512):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events(6))
        path.write_bytes(path.read_bytes() + padding)
        return path

    def test_eager_tolerates_padding_in_both_modes(self, tmp_path):
        path = self._padded(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert read_binary_trace(path) == sample_events(6)
            assert read_binary_trace(
                path, on_error="raise") == sample_events(6)

    def test_streaming_tolerates_padding_in_both_modes(self, tmp_path):
        path = self._padded(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert drain(iter_binary_trace(path, 2)) == sample_events(6)
            assert drain(iter_binary_trace(
                path, 2, on_error="raise")) == sample_events(6)

    def test_non_nul_trailing_junk_is_still_damage(self, tmp_path):
        path = self._padded(tmp_path, padding=b"\x00\x00junk")
        with pytest.warns(TraceWarning):
            assert read_binary_trace(path) == sample_events(6)
        with pytest.warns(TraceWarning):
            assert drain(iter_binary_trace(path, 4)) == sample_events(6)
        with pytest.raises(TraceError):
            read_binary_trace(path, on_error="raise")
        with pytest.raises(TraceError):
            drain(iter_binary_trace(path, 4, on_error="raise"))


class TestIterBinaryTrace:
    @pytest.mark.parametrize("chunk_size", [1, 3, 23, 1000])
    def test_concatenation_equals_eager(self, tmp_path, chunk_size):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        assert drain(iter_binary_trace(path,
                                       chunk_size)) == read_binary_trace(path)

    def test_truncated_records_salvaged(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes()[:-25])
        with pytest.warns(TraceWarning, match="truncated"):
            got = drain(iter_binary_trace(path, 4))
        assert got == sample_events()[:len(got)]
        assert len(got) < len(sample_events())

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "t.rptb"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(TraceError):
            drain(iter_binary_trace(path))


class TestIterAny:
    def test_dispatch(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        gz = tmp_path / "t.jsonl.gz"
        binary = tmp_path / "t.rptb"
        write_trace(jsonl, sample_events())
        write_trace(gz, sample_events())
        write_binary_trace(binary, sample_events())
        for path in (jsonl, gz, binary):
            assert drain(iter_any(path, 7)) == sample_events()

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "t.dat"
        path.write_bytes(b"garbage data here")
        with pytest.raises(TraceError, match="no supported"):
            iter_any(path)


class TestJsonlSpans:
    def test_tiling_partitions_events(self, tmp_path):
        """Any monotone sequence of cut points partitions the events."""
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        size = path.stat().st_size
        for cuts in ([0, size], [0, 1, size], [0, size // 2, size],
                     [0, size // 3, 2 * size // 3, size],
                     sorted(set(range(0, size, 17)) | {size})):
            got = []
            for start, stop in zip(cuts, cuts[1:]):
                got.extend(drain(iter_trace_span(path, start, stop, 4)))
            assert got == sample_events()

    def test_span_starting_past_header_skips_partial_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        header_end = len(path.read_bytes().split(b"\n", 1)[0]) + 1
        # A span starting inside the first event line must not yield it.
        inner = drain(iter_trace_span(path, header_end + 2,
                                      path.stat().st_size))
        assert inner == sample_events()[1:]

    def test_gzip_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_trace(path, sample_events())
        with pytest.raises(TraceError, match="not seekable"):
            drain(iter_trace_span(path, 0, 100))

    def test_invalid_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        with pytest.raises(TraceError, match="invalid byte span"):
            drain(iter_trace_span(path, 10, 5))

    def test_empty_span_yields_nothing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        assert drain(iter_trace_span(path, 100, 100)) == []


class TestBinarySpans:
    def test_tiling_partitions_events(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        count = len(sample_events())
        for cuts in ([0, count], [0, 1, count], [0, 5, 11, count]):
            got = []
            for start, stop in zip(cuts, cuts[1:]):
                got.extend(drain(iter_binary_span(path, start, stop, 3)))
            assert got == sample_events()

    def test_range_is_clipped_to_file(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        assert drain(iter_binary_span(path, 20, 999)) == sample_events()[20:]
        assert drain(iter_binary_span(path, 999, 1000)) == []


class TestShardPlanner:
    def test_plans_cover_every_event_once(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.rptb"
        write_trace(jsonl, sample_events())
        write_binary_trace(binary, sample_events())
        for path in (jsonl, binary):
            for n_shards in (1, 2, 3, 8, 100):
                shards = plan_shards(path, n_shards)
                assert 1 <= len(shards) <= n_shards
                merged = accumulate_shard(shards[0])
                for shard in shards[1:]:
                    merged = merged.merge(accumulate_shard(shard))
                assert merged.n_events == len(sample_events())

    def test_gzip_degrades_to_whole_file_shard(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_trace(path, sample_events())
        shards = plan_shards(path, 8)
        assert [shard.kind for shard in shards] == ["whole"]
        assert accumulate_shard(shards[0]).n_events == len(sample_events())

    def test_binary_plan_uses_record_ranges(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        shards = plan_shards(path, 4)
        assert all(shard.kind == "binary" for shard in shards)
        assert shards[0].start == 0
        assert shards[-1].stop == len(sample_events())

    def test_rejects_bad_inputs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, sample_events())
        with pytest.raises(TraceError, match="at least one shard"):
            plan_shards(path, 0)
        with pytest.raises(TraceError, match="does not exist"):
            plan_shards(tmp_path / "none.jsonl", 2)
        bad = tmp_path / "t.dat"
        bad.write_bytes(b"not a trace")
        with pytest.raises(TraceError, match="no supported"):
            plan_shards(bad, 2)

    def test_shard_kind_is_validated(self, tmp_path):
        with pytest.raises(TraceError, match="shard kind"):
            Shard(path="x", kind="zip")
