"""Unit tests for the end-to-end methodology driver."""

import numpy as np
import pytest

from repro.core import Methodology, analyze
from repro.errors import ReproError


class TestAnalyze:
    def test_result_components(self, tiny_measurements):
        result = analyze(tiny_measurements, cluster_count=None)
        assert result.breakdown.dominant_activity in ("X", "Y")
        assert result.processor_view.dispersion.shape == (2, 4)
        assert result.activity_view.index.shape == (2,)
        assert result.region_view.index.shape == (2,)
        assert result.activity_ranking.names
        assert result.region_ranking.names

    def test_cluster_disabled_for_small_sets(self, tiny_measurements):
        result = analyze(tiny_measurements, cluster_count=None)
        assert result.region_clusters == (("A", "B"),)

    def test_patterns_cover_performed_activities(self, tiny_measurements):
        result = analyze(tiny_measurements, cluster_count=None)
        activities = {grid.activity for grid in result.patterns}
        assert activities == {"X", "Y"}

    def test_pattern_lookup(self, tiny_measurements):
        result = analyze(tiny_measurements, cluster_count=None)
        assert result.pattern("X").activity == "X"
        with pytest.raises(ReproError):
            result.pattern("Z")

    def test_criterion_configuration(self, tiny_measurements):
        methodology = Methodology(criterion="threshold",
                                  criterion_parameters={"threshold": 0.0},
                                  cluster_count=None)
        result = methodology.analyze(tiny_measurements)
        assert result.activity_ranking.criterion == "threshold(0)"

    def test_uniform_weighting_changes_indices(self, paper_measurements):
        time_weighted = analyze(paper_measurements)
        uniform = analyze(paper_measurements, weighting="uniform")
        assert not np.allclose(time_weighted.activity_view.index,
                               uniform.activity_view.index)

    def test_alternative_index(self, paper_measurements):
        result = analyze(paper_measurements, index="cv")
        assert np.all(np.nan_to_num(result.activity_view.dispersion) >= 0.0)

    def test_deterministic(self, paper_measurements):
        first = analyze(paper_measurements)
        second = analyze(paper_measurements)
        np.testing.assert_array_equal(first.region_view.scaled_index,
                                      second.region_view.scaled_index)


class TestPaperConclusions:
    """The §4 narrative, end to end on the reconstructed data."""

    @pytest.fixture(scope="class")
    def result(self, paper_measurements):
        return analyze(paper_measurements)

    def test_dominant_and_heaviest(self, result):
        assert result.breakdown.dominant_activity == "computation"
        assert result.breakdown.heaviest_region == "loop 1"

    def test_clusters(self, result):
        assert set(map(frozenset, result.region_clusters)) == {
            frozenset({"loop 1", "loop 2"}),
            frozenset({"loop 3", "loop 4", "loop 5", "loop 6", "loop 7"})}

    def test_sync_most_imbalanced_but_negligible(self, result):
        view = result.activity_view
        assert view.most_imbalanced() == "synchronization"
        # "its impact on the overall performance is negligible"
        assert view.ranking(scaled=True)[-1] == "synchronization"

    def test_loop6_most_imbalanced_loop1_candidate(self, result):
        view = result.region_view
        assert view.most_imbalanced() == "loop 6"
        assert view.most_imbalanced(scaled=True) == "loop 1"
        assert result.tuning_candidates[0] == "loop 1"

    def test_processor_view_facts(self, result):
        summary = result.processor_view.summary()
        assert summary.most_frequent == 0          # "processor 1"
        assert summary.most_frequent_count == 2    # loops 3 and 7
        assert summary.longest == 1                # "processor 2"
        assert summary.longest_time == pytest.approx(15.93, abs=1e-6)

    def test_localization(self, result):
        # Synchronization is worst in loop 5 (ID 0.30571).
        assert result.activity_view.localize("synchronization") == "loop 5"
        # Collective imbalance localizes to loop 1.
        assert result.activity_view.localize("collective") == "loop 1"
