"""Integration tests: the full pipeline, end to end.

simulate -> trace -> (write/read trace file) -> profile -> methodology,
plus the comparison between the methodology and the threshold-search
baseline that motivates the paper.
"""

import numpy as np
import pytest

from repro.apps import (CFDConfig, Straggler, SyntheticWorkload,
                        imbalance_sweep_workload, run_cfd)
from repro.baselines import region_percent_imbalance, search
from repro.core import Band, analyze, render_full_report
from repro.instrument import Tracer, profile, read_tracer, write_tracer
from repro.simmpi import NetworkModel, Simulator


class TestFullPipeline:
    def test_simulate_to_report(self, cfd_run):
        result, tracer, measurements = cfd_run
        analysis = analyze(measurements)
        report = render_full_report(analysis)
        assert "loop 1" in report and "Top-down analysis summary" in report
        # The simulated elapsed time bounds each region's wall clock.
        assert measurements.region_times.max() <= result.elapsed

    def test_trace_file_detour_preserves_analysis(self, cfd_run, tmp_path):
        _, tracer, direct_ms = cfd_run
        path = tmp_path / "cfd.jsonl.gz"
        write_tracer(path, tracer)
        from repro.apps import LOOPS
        rebuilt_ms = profile(read_tracer(path), regions=LOOPS)
        np.testing.assert_allclose(rebuilt_ms.times, direct_ms.times)
        direct = analyze(direct_ms)
        rebuilt = analyze(rebuilt_ms)
        np.testing.assert_allclose(direct.region_view.scaled_index,
                                   rebuilt.region_view.scaled_index)

    def test_injected_straggler_is_found(self):
        """Plant an imbalance, recover it through the whole stack."""
        workload = imbalance_sweep_workload(
            Straggler(rank=5, factor_value=1.8))
        _, _, measurements = workload.run(8)
        analysis = analyze(measurements, cluster_count=None)
        # The kernel region must surface as the top scaled candidate...
        assert analysis.region_view.most_imbalanced(scaled=True) == "kernel"
        # ...and the processor view must finger rank 5 in the kernel.
        assert analysis.processor_view.most_imbalanced_processor(
            "kernel") == 5
        # The pattern grid shows rank 5 at the computation maximum.
        assert analysis.pattern("computation").row("kernel")[5] is Band.MAX

    def test_imbalance_monotone_in_injected_skew(self):
        """More injected skew -> larger scaled index for the kernel."""
        indices = []
        for factor in (1.0, 1.4, 1.8, 2.2):
            workload = imbalance_sweep_workload(
                Straggler(rank=2, factor_value=factor))
            _, _, measurements = workload.run(8)
            view = analyze(measurements, cluster_count=None).region_view
            kernel = measurements.region_index("kernel")
            indices.append(float(view.index[kernel]))
        assert all(later > earlier - 1e-9
                   for earlier, later in zip(indices, indices[1:]))
        assert indices[-1] > indices[0]

    def test_methodology_vs_threshold_search(self, paper_measurements):
        """The motivating contrast: the threshold search never descends
        into synchronization (0.1% of runtime), while the methodology
        flags it as the most imbalanced activity."""
        baseline = search(paper_measurements)
        refined = {hypothesis.focus[0]
                   for hypothesis in baseline.hypotheses
                   if hypothesis.level != "program"}
        assert "synchronization" not in refined
        analysis = analyze(paper_measurements)
        assert analysis.activity_view.most_imbalanced() == "synchronization"

    def test_baseline_agrees_on_gross_imbalance(self, cfd_measurements):
        """Where computational imbalance is gross (loop 6's hot
        boundary ranks), the percent-imbalance baseline and the
        methodology agree on the ordering."""
        from repro.baselines import summarize
        baseline = summarize(cfd_measurements)
        assert baseline["loop 6"]["computation"].percent > \
            baseline["loop 1"]["computation"].percent
        analysis = analyze(cfd_measurements)
        assert analysis.region_view.most_imbalanced() == "loop 6"


class TestCrossNetworkRobustness:
    def test_shape_survives_network_change(self):
        """The paper's qualitative conclusions should not hinge on exact
        network constants: double latency and halve bandwidth."""
        slow = NetworkModel(latency=80e-6, bandwidth=17.5e6, overhead=5e-6,
                            eager_threshold=8192)
        _, _, measurements = run_cfd(network=slow)
        analysis = analyze(measurements)
        # With half the bandwidth the collective share grows (it may even
        # become dominant); the structural findings must survive.
        assert analysis.breakdown.heaviest_region == "loop 1"
        assert analysis.region_view.most_imbalanced() == "loop 6"

    def test_heterogeneous_links_show_up_in_p2p(self):
        """A slow link into one rank inflates its neighbours' p2p times."""
        def weak_link(src, dst):
            return 4.0 if 3 in (src, dst) else 1.0

        network = NetworkModel(latency=50e-6, bandwidth=30e6,
                               link_scale=weak_link, eager_threshold=0)

        def program(comm):
            with comm.region("exchange"):
                yield from comm.compute(1e-3)
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                yield from comm.sendrecv(right, 64 * 1024, left)

        tracer = Tracer()
        Simulator(8, network=network, trace_sink=tracer.record).run(program)
        measurements = profile(tracer)
        j = measurements.activity_index("point-to-point")
        times = measurements.times[0, j, :]
        # Rank 3 and its ring neighbours suffer the slow link.
        assert times[3] > np.median(times)


class TestScalability:
    @pytest.mark.parametrize("n_ranks", [2, 4, 32])
    def test_cfd_runs_at_other_scales(self, n_ranks):
        # Defaults target 16 ranks on a 256^2 grid; at other scales keep
        # computation dominant by raising per-cell work and shrinking the
        # reductions proportionally to the smaller grid.
        config = CFDConfig(grid=(64, 64), steps=1, time_per_cell=6e-6,
                           reduction_bytes=16 * 1024, loop_imbalance={})
        _, _, measurements = run_cfd(config, n_ranks=n_ranks)
        assert measurements.n_processors == n_ranks
        analysis = analyze(measurements, cluster_count=None)
        assert analysis.breakdown.dominant_activity == "computation"

    def test_many_regions(self):
        from repro.apps import RegionSpec
        workload = SyntheticWorkload(regions=tuple(
            RegionSpec(name=f"region {i}", compute=1e-4,
                       pattern="barrier" if i % 3 == 0 else "none")
            for i in range(40)))
        _, _, measurements = workload.run(4)
        assert measurements.n_regions == 40
        analysis = analyze(measurements, cluster_count=2)
        assert len(analysis.region_clusters) == 2
