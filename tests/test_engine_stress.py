"""Stress and property tests for the simulator engine.

Random — but SPMD-consistent — programs must always terminate without
deadlock, produce causally consistent clocks, and be bit-for-bit
deterministic across runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import Tracer
from repro.simmpi import NetworkModel, Simulator

FAST = NetworkModel(latency=1e-5, bandwidth=1e8, overhead=1e-7,
                    eager_threshold=4096)

#: One random SPMD step: (kind, parameter).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("compute"),
                  st.floats(min_value=0.0, max_value=1e-3)),
        st.tuples(st.just("allreduce"),
                  st.integers(min_value=0, max_value=1 << 16)),
        st.tuples(st.just("barrier"), st.just(0)),
        st.tuples(st.just("bcast"), st.integers(0, 1 << 14)),
        st.tuples(st.just("reduce"), st.integers(0, 1 << 14)),
        st.tuples(st.just("alltoall"), st.integers(0, 1 << 10)),
        st.tuples(st.just("ring"), st.integers(0, 1 << 14)),
        st.tuples(st.just("reduce_scatter"), st.integers(0, 1 << 12)),
        st.tuples(st.just("scan"), st.integers(0, 1 << 12)),
    ),
    min_size=1, max_size=12)


def spmd_program(comm, script, rank_skew):
    with comm.region("random"):
        for kind, parameter in script:
            if kind == "compute":
                yield from comm.compute(
                    parameter * (1.0 + rank_skew * comm.rank))
            elif kind == "allreduce":
                yield from comm.allreduce(parameter)
            elif kind == "barrier":
                yield from comm.barrier()
            elif kind == "bcast":
                yield from comm.bcast(0, parameter)
            elif kind == "reduce":
                yield from comm.reduce(comm.size - 1, parameter)
            elif kind == "alltoall":
                yield from comm.alltoall(parameter)
            elif kind == "ring":
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                if comm.size > 1:
                    yield from comm.sendrecv(right, parameter, left)
            elif kind == "reduce_scatter":
                yield from comm.reduce_scatter(parameter)
            elif kind == "scan":
                yield from comm.scan(parameter)


class TestRandomSPMDPrograms:
    @settings(max_examples=60, deadline=None)
    @given(steps, st.integers(min_value=1, max_value=12),
           st.floats(min_value=0.0, max_value=0.5))
    def test_terminates_with_consistent_clocks(self, script, n_ranks,
                                               rank_skew):
        result = Simulator(n_ranks, network=FAST).run(
            spmd_program, script, rank_skew)
        assert all(clock >= 0.0 for clock in result.clocks)
        # Pure compute lower bound for rank 0.
        compute_total = sum(parameter for kind, parameter in script
                            if kind == "compute")
        assert result.clocks[0] >= compute_total - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(steps, st.integers(min_value=2, max_value=8))
    def test_bitwise_determinism(self, script, n_ranks):
        first_events = []
        second_events = []
        Simulator(n_ranks, network=FAST,
                  trace_sink=lambda *args: first_events.append(args)
                  ).run(spmd_program, script, 0.25)
        Simulator(n_ranks, network=FAST,
                  trace_sink=lambda *args: second_events.append(args)
                  ).run(spmd_program, script, 0.25)
        assert first_events == second_events

    @settings(max_examples=30, deadline=None)
    @given(steps, st.integers(min_value=2, max_value=8))
    def test_trace_is_gap_free(self, script, n_ranks):
        tracer = Tracer()
        result = Simulator(n_ranks, network=FAST,
                           trace_sink=tracer.record).run(
            spmd_program, script, 0.25)
        for rank in range(n_ranks):
            events = sorted(tracer.events_of(rank),
                            key=lambda event: event.begin)
            clock = 0.0
            for event in events:
                assert event.begin == pytest.approx(clock, abs=1e-9)
                clock = event.end
            assert clock == pytest.approx(result.clocks[rank], abs=1e-9)


class TestManyRanks:
    def test_collective_storm_at_p128(self):
        def program(comm):
            yield from comm.compute(1e-5 * (comm.rank % 7))
            yield from comm.allreduce(1024)
            yield from comm.barrier()
            yield from comm.bcast(0, 4096)
            yield from comm.reduce(0, 4096)

        result = Simulator(128, network=FAST).run(program)
        assert result.messages > 128 * 4

    def test_p2p_mesh(self):
        """Every rank exchanges with every other rank, tag-disambiguated;
        must complete without deadlock under eager sends."""
        def program(comm):
            requests = []
            for peer in range(comm.size):
                if peer != comm.rank:
                    request = yield from comm.irecv(peer, tag=comm.rank)
                    requests.append(request)
            for peer in range(comm.size):
                if peer != comm.rank:
                    yield from comm.send(peer, 128, tag=peer)
            yield from comm.waitall(requests)

        result = Simulator(24, network=FAST).run(program)
        assert result.messages == 24 * 23

    def test_long_chain(self):
        """A 1000-hop token pass exercises deep sequential matching."""
        def program(comm):
            hops = 1000
            for hop in range(hops):
                owner = hop % comm.size
                target = (hop + 1) % comm.size
                if comm.rank == owner:
                    yield from comm.send(target, 8, tag=5)
                elif comm.rank == target:
                    yield from comm.recv(owner, tag=5)

        result = Simulator(4, network=FAST).run(program)
        assert result.messages == 1000
