"""Tests for windowed profiles and the temporal (drift) analysis."""

import numpy as np
import pytest

from repro.core import MeasurementSet, temporal_analysis
from repro.errors import MeasurementError, TraceError
from repro.instrument import Tracer, profile, window_profiles


def make_tracer():
    """Two ranks; the imbalance of region 'r' grows over three phases."""
    tracer = Tracer()
    for phase, skew in enumerate((0.0, 0.3, 0.6)):
        begin = float(phase)
        tracer.record(0, "r", "computation", begin, begin + 0.5 + skew)
        tracer.record(1, "r", "computation", begin, begin + 0.5 - skew / 2)
    return tracer


class TestWindowProfiles:
    def test_window_count_and_bounds(self):
        windows = window_profiles(make_tracer(), 3)
        assert len(windows) == 3
        assert windows[0].begin == 0.0
        assert windows[-1].end == pytest.approx(3.1)
        assert windows[1].midpoint > windows[0].midpoint

    def test_windows_partition_the_tensor(self):
        """Summing the windowed tensors recovers the whole profile."""
        tracer = make_tracer()
        whole = profile(tracer)
        windows = window_profiles(tracer, 4)
        total = sum(window.measurements.times for window in windows)
        np.testing.assert_allclose(total, whole.times, atol=1e-12)

    def test_boundary_events_split_proportionally(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 2.0)
        windows = window_profiles(tracer, 2)
        assert len(windows) == 2
        for window in windows:
            assert window.measurements.times.sum() == pytest.approx(1.0)

    def test_consistent_layout_across_windows(self):
        tracer = Tracer()
        tracer.record(0, "a", "computation", 0.0, 1.0)
        tracer.record(0, "b", "point-to-point", 1.0, 2.0, kind="send")
        windows = window_profiles(tracer, 2)
        first, second = windows
        assert first.measurements.regions == second.measurements.regions
        assert first.measurements.activities == \
            second.measurements.activities

    def test_empty_windows_dropped(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 0.1)
        tracer.record(0, "r", "computation", 0.9, 1.0)
        windows = window_profiles(tracer, 10)
        assert 1 <= len(windows) <= 3

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            window_profiles(Tracer(), 2)

    def test_rejects_zero_windows(self):
        with pytest.raises(TraceError):
            window_profiles(make_tracer(), 0)


class TestTemporalAnalysis:
    def test_growing_imbalance_has_positive_slope(self):
        windows = window_profiles(make_tracer(), 3)
        analysis = temporal_analysis(windows)
        trend = analysis.trend("r")
        assert trend.slope > 0.0
        assert trend.series[0] < trend.series[-1]
        # The first window is perfectly balanced (ID 0), so the
        # end-to-end amplification is measured from the first nonzero
        # value onward and reported as 1.0 by convention.
        assert trend.final > 0.5

    def test_flat_imbalance_is_stationary(self):
        tracer = Tracer()
        for phase in range(3):
            begin = float(phase)
            tracer.record(0, "r", "computation", begin, begin + 1.0)
            tracer.record(1, "r", "computation", begin, begin + 1.0)
        analysis = temporal_analysis(window_profiles(tracer, 3))
        assert analysis.stationary_regions() == ("r",)
        assert analysis.drifting_regions() == ()

    def test_accepts_bare_measurement_sets(self):
        def skewed(delta):
            times = np.zeros((1, 1, 2))
            times[0, 0] = [1.0 + delta, 1.0 - delta]
            return MeasurementSet(times, regions=("r",), activities=("X",))

        analysis = temporal_analysis([skewed(0.0), skewed(0.2),
                                      skewed(0.4)])
        assert analysis.trend("r").slope > 0.0

    def test_unknown_region_rejected(self):
        analysis = temporal_analysis(window_profiles(make_tracer(), 2))
        with pytest.raises(MeasurementError):
            analysis.trend("nope")

    def test_mismatched_regions_rejected(self):
        a = MeasurementSet(np.ones((1, 1, 2)), regions=("a",),
                           activities=("X",))
        b = MeasurementSet(np.ones((1, 1, 2)), regions=("b",),
                           activities=("X",))
        with pytest.raises(MeasurementError):
            temporal_analysis([a, b])

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            temporal_analysis([])


class TestWindowProfilesAt:
    def test_explicit_boundaries(self):
        from repro.instrument import window_profiles_at
        windows = window_profiles_at(make_tracer(), [0.0, 1.0, 2.0, 3.1])
        assert len(windows) == 3
        assert windows[0].end == 1.0
        # Phase-aligned: each window holds exactly one phase's events.
        assert windows[0].measurements.times.sum() == pytest.approx(1.0)

    def test_partial_coverage(self):
        from repro.instrument import window_profiles_at
        windows = window_profiles_at(make_tracer(), [1.0, 2.0])
        assert len(windows) == 1
        assert windows[0].begin == 1.0

    def test_validation(self):
        from repro.instrument import window_profiles_at
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [0.0])
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [1.0, 1.0])
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [100.0, 200.0])
