"""Tests for windowed profiles and the temporal (drift) analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MeasurementSet, detect_phases, temporal_analysis
from repro.core.temporal import _amplification
from repro.errors import MeasurementError, TraceError
from repro.instrument import (Tracer, profile, rescan_window_profiles,
                              rescan_window_profiles_at, shift_time,
                              window_profiles, window_profiles_at)


def make_tracer():
    """Two ranks; the imbalance of region 'r' grows over three phases."""
    tracer = Tracer()
    for phase, skew in enumerate((0.0, 0.3, 0.6)):
        begin = float(phase)
        tracer.record(0, "r", "computation", begin, begin + 0.5 + skew)
        tracer.record(1, "r", "computation", begin, begin + 0.5 - skew / 2)
    return tracer


class TestWindowProfiles:
    def test_window_count_and_bounds(self):
        windows = window_profiles(make_tracer(), 3)
        assert len(windows) == 3
        assert windows[0].begin == 0.0
        assert windows[-1].end == pytest.approx(3.1)
        assert windows[1].midpoint > windows[0].midpoint

    def test_windows_partition_the_tensor(self):
        """Summing the windowed tensors recovers the whole profile."""
        tracer = make_tracer()
        whole = profile(tracer)
        windows = window_profiles(tracer, 4)
        total = sum(window.measurements.times for window in windows)
        np.testing.assert_allclose(total, whole.times, atol=1e-12)

    def test_boundary_events_split_proportionally(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 2.0)
        windows = window_profiles(tracer, 2)
        assert len(windows) == 2
        for window in windows:
            assert window.measurements.times.sum() == pytest.approx(1.0)

    def test_consistent_layout_across_windows(self):
        tracer = Tracer()
        tracer.record(0, "a", "computation", 0.0, 1.0)
        tracer.record(0, "b", "point-to-point", 1.0, 2.0, kind="send")
        windows = window_profiles(tracer, 2)
        first, second = windows
        assert first.measurements.regions == second.measurements.regions
        assert first.measurements.activities == \
            second.measurements.activities

    def test_empty_windows_dropped(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 0.1)
        tracer.record(0, "r", "computation", 0.9, 1.0)
        windows = window_profiles(tracer, 10)
        assert 1 <= len(windows) <= 3

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            window_profiles(Tracer(), 2)

    def test_rejects_zero_windows(self):
        with pytest.raises(TraceError):
            window_profiles(make_tracer(), 0)


class TestTemporalAnalysis:
    def test_growing_imbalance_has_positive_slope(self):
        windows = window_profiles(make_tracer(), 3)
        analysis = temporal_analysis(windows)
        trend = analysis.trend("r")
        assert trend.slope > 0.0
        assert trend.series[0] < trend.series[-1]
        # The first window is perfectly balanced (ID 0), so the
        # amplification falls back to the first positive value as the
        # baseline and still reports the degradation.
        assert trend.final > 0.5
        assert trend.amplification > 1.0

    def test_flat_imbalance_is_stationary(self):
        tracer = Tracer()
        for phase in range(3):
            begin = float(phase)
            tracer.record(0, "r", "computation", begin, begin + 1.0)
            tracer.record(1, "r", "computation", begin, begin + 1.0)
        analysis = temporal_analysis(window_profiles(tracer, 3))
        assert analysis.stationary_regions() == ("r",)
        assert analysis.drifting_regions() == ()

    def test_accepts_bare_measurement_sets(self):
        def skewed(delta):
            times = np.zeros((1, 1, 2))
            times[0, 0] = [1.0 + delta, 1.0 - delta]
            return MeasurementSet(times, regions=("r",), activities=("X",))

        analysis = temporal_analysis([skewed(0.0), skewed(0.2),
                                      skewed(0.4)])
        assert analysis.trend("r").slope > 0.0

    def test_unknown_region_rejected(self):
        analysis = temporal_analysis(window_profiles(make_tracer(), 2))
        with pytest.raises(MeasurementError):
            analysis.trend("nope")

    def test_mismatched_regions_rejected(self):
        a = MeasurementSet(np.ones((1, 1, 2)), regions=("a",),
                           activities=("X",))
        b = MeasurementSet(np.ones((1, 1, 2)), regions=("b",),
                           activities=("X",))
        with pytest.raises(MeasurementError):
            temporal_analysis([a, b])

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            temporal_analysis([])


class TestWindowProfilesAt:
    def test_explicit_boundaries(self):
        from repro.instrument import window_profiles_at
        windows = window_profiles_at(make_tracer(), [0.0, 1.0, 2.0, 3.1])
        assert len(windows) == 3
        assert windows[0].end == 1.0
        # Phase-aligned: each window holds exactly one phase's events.
        assert windows[0].measurements.times.sum() == pytest.approx(1.0)

    def test_partial_coverage(self):
        from repro.instrument import window_profiles_at
        windows = window_profiles_at(make_tracer(), [1.0, 2.0])
        assert len(windows) == 1
        assert windows[0].begin == 1.0

    def test_validation(self):
        from repro.instrument import window_profiles_at
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [0.0])
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [1.0, 1.0])
        with pytest.raises(TraceError):
            window_profiles_at(make_tracer(), [100.0, 200.0])


def skewed_set(delta, region="r"):
    """A one-region, two-processor set with imbalance ``delta``."""
    times = np.zeros((1, 1, 2))
    times[0, 0] = [1.0 + delta, 1.0 - delta]
    return MeasurementSet(times, regions=(region,), activities=("X",))


class TestAmplification:
    """Regression suite for the balanced-start blind spot: a series
    starting at exactly 0 used to report amplification 1.0 no matter
    how badly it degraded."""

    def test_positive_start_is_final_over_first(self):
        assert _amplification([2.0, 1.0, 5.0]) == pytest.approx(2.5)

    def test_zero_start_uses_first_positive_baseline(self):
        assert _amplification([0.0, 2.0, 5.0]) == pytest.approx(2.5)

    def test_zero_start_sudden_degradation_is_infinite(self):
        assert _amplification([0.0, 0.0, 5.0]) == float("inf")

    def test_all_zero_is_one(self):
        assert _amplification([0.0, 0.0, 0.0]) == 1.0

    def test_recovery_to_zero(self):
        assert _amplification([0.0, 2.0, 0.0]) == 0.0

    def test_nan_windows_skipped(self):
        assert _amplification([float("nan"), 2.0, 4.0]) == pytest.approx(2.0)

    def test_short_series_is_one(self):
        assert _amplification([3.0]) == 1.0
        assert _amplification([]) == 1.0

    def test_balanced_start_then_degrading_region_is_flagged(self):
        """Acceptance regression: a region that starts perfectly
        balanced (index exactly 0) and then degrades must show up in
        drifting_regions()."""
        analysis = temporal_analysis(
            [skewed_set(0.0), skewed_set(0.2), skewed_set(0.5)])
        trend = analysis.trend("r")
        assert trend.series[0] == pytest.approx(0.0)
        assert trend.slope > 0.0
        assert trend.amplification >= 1.5
        assert "r" in analysis.drifting_regions()


def offset_tracer(offset):
    """The drifting two-rank trace translated to start at ``offset``."""
    return shift_time(make_tracer(), offset)


class TestSweepMatchesRescan:
    """The single-pass sweep must be bit-identical to the historical
    per-window rescan, offsets included."""

    @staticmethod
    def assert_windows_identical(old, new):
        assert len(old) == len(new)
        for reference, candidate in zip(old, new):
            assert reference.begin == candidate.begin
            assert reference.end == candidate.end
            ms_old, ms_new = reference.measurements, candidate.measurements
            assert ms_old.regions == ms_new.regions
            assert ms_old.activities == ms_new.activities
            assert np.array_equal(ms_old.times, ms_new.times)
            assert ms_old.total_time == ms_new.total_time

    @pytest.mark.parametrize("n_windows", [1, 2, 3, 7, 64])
    def test_equal_windows(self, n_windows):
        tracer = make_tracer()
        self.assert_windows_identical(
            rescan_window_profiles(tracer, n_windows),
            window_profiles(tracer, n_windows))

    @pytest.mark.parametrize("offset", [0.25, 5.0, 1234.5])
    def test_offset_traces(self, offset):
        tracer = offset_tracer(offset)
        self.assert_windows_identical(
            rescan_window_profiles(tracer, 5),
            window_profiles(tracer, 5))

    def test_explicit_boundaries(self):
        tracer = make_tracer()
        boundaries = [0.0, 0.4, 1.0, 2.2, 3.1]
        self.assert_windows_identical(
            rescan_window_profiles_at(tracer, boundaries),
            window_profiles_at(tracer, boundaries))

    def test_mixed_regions_and_activities(self):
        tracer = Tracer()
        tracer.record(0, "a", "computation", 0.0, 1.3)
        tracer.record(1, "a", "point-to-point", 0.2, 0.9, kind="send")
        tracer.record(0, "b", "synchronization", 1.3, 2.8, kind="wait")
        tracer.record(1, "b", "computation", 1.0, 2.5)
        self.assert_windows_identical(
            rescan_window_profiles(tracer, 4),
            window_profiles(tracer, 4))


class TestOffsetWindows:
    """window_profiles used to assume traces start at t=0: a trace
    beginning at t=1000 produced windows covering [0, end] with all the
    mass crammed into the tail."""

    def test_edges_span_the_actual_extent(self):
        tracer = offset_tracer(1000.0)
        windows = window_profiles(tracer, 4)
        assert windows[0].begin == pytest.approx(1000.0)
        assert windows[-1].end == pytest.approx(1003.1)

    def test_offset_windows_partition_the_tensor(self):
        tracer = offset_tracer(1000.0)
        whole = profile(tracer)
        total = sum(w.measurements.times for w in window_profiles(tracer, 4))
        np.testing.assert_allclose(total, whole.times, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(offset=st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
           n_windows=st.integers(min_value=1, max_value=9))
    def test_windows_sum_to_whole_trace_under_any_offset(
            self, offset, n_windows):
        tracer = offset_tracer(offset)
        whole = profile(tracer)
        windows = window_profiles(tracer, n_windows)
        total = sum(w.measurements.times for w in windows)
        np.testing.assert_allclose(total, whole.times,
                                   rtol=1e-9, atol=1e-9 * (1.0 + offset))


class TestDetectPhases:
    def test_step_change_found_at_boundary(self):
        phases = detect_phases([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
        assert len(phases) == 2
        assert (phases[0].begin, phases[0].end) == (0, 3)
        assert (phases[1].begin, phases[1].end) == (3, 6)
        assert phases[0].mean == pytest.approx(0.0)
        assert phases[1].mean == pytest.approx(5.0)

    def test_flat_series_is_one_phase(self):
        phases = detect_phases([2.0] * 8)
        assert len(phases) == 1
        assert phases[0].n_windows == 8

    def test_jitter_around_a_step_yields_only_the_step(self):
        rng = np.random.default_rng(7)
        series = np.concatenate([np.zeros(16), np.full(16, 5.0)])
        series += 0.01 * rng.standard_normal(32)
        phases = detect_phases(series)
        assert [p.begin for p in phases] == [0, 16]

    def test_three_levels(self):
        series = [0.0] * 4 + [3.0] * 4 + [9.0] * 4
        phases = detect_phases(series)
        assert [p.begin for p in phases] == [0, 4, 8]

    def test_nan_windows_carry_no_evidence(self):
        phases = detect_phases([0.0, float("nan"), 0.0, 5.0, 5.0, 5.0])
        assert phases[-1].begin == 3

    def test_all_nan_series_is_one_nan_phase(self):
        phases = detect_phases([float("nan")] * 4)
        assert len(phases) == 1
        assert np.isnan(phases[0].mean)

    def test_explicit_penalty_suppresses_splits(self):
        series = [0.0, 0.0, 5.0, 5.0]
        assert len(detect_phases(series)) == 2
        assert len(detect_phases(series, penalty=1e6)) == 1

    def test_empty_series_rejected(self):
        with pytest.raises(MeasurementError):
            detect_phases([])

    def test_bad_min_size_rejected(self):
        with pytest.raises(MeasurementError):
            detect_phases([1.0, 2.0], min_size=0)


class TestForecast:
    def drifting_analysis(self):
        return temporal_analysis(
            [skewed_set(0.1), skewed_set(0.2), skewed_set(0.3)])

    def test_already_crossed_reports_first_observed_window(self):
        trend = self.drifting_analysis().trend("r")
        threshold = trend.series[1]
        assert trend.forecast_window(threshold) == 1.0

    def test_future_crossing_extrapolates(self):
        trend = self.drifting_analysis().trend("r")
        threshold = trend.series[-1] + 2.0 * trend.slope
        window = trend.forecast_window(threshold)
        assert len(trend.series) - 1 < window < float("inf")

    def test_declining_series_never_crosses(self):
        analysis = temporal_analysis(
            [skewed_set(0.3), skewed_set(0.2), skewed_set(0.1)])
        assert analysis.trend("r").forecast_window(1e9) == float("inf")

    def test_forecast_maps_every_region(self):
        analysis = self.drifting_analysis()
        forecasts = analysis.forecast(1e9)
        assert set(forecasts) == {"r"}


class TestTemporalEdgeCases:
    def test_single_window(self):
        analysis = temporal_analysis(window_profiles(make_tracer(), 1))
        assert analysis.n_windows == 1
        trend = analysis.trend("r")
        assert trend.slope == 0.0
        assert trend.amplification == 1.0
        assert analysis.drifting_regions() == ()

    def test_all_nan_region_series(self):
        """A region that never runs has a nan index in every window;
        it must neither crash nor be reported as drifting."""
        def with_quiet(delta):
            times = np.zeros((2, 1, 2))
            times[0, 0] = [1.0 + delta, 1.0 - delta]
            return MeasurementSet(times, regions=("r", "quiet"),
                                  activities=("X",))

        analysis = temporal_analysis(
            [with_quiet(0.0), with_quiet(0.2), with_quiet(0.4)])
        quiet = analysis.trend("quiet")
        assert all(np.isnan(value) for value in quiet.series)
        assert quiet.slope == 0.0
        assert quiet.amplification == 1.0
        assert "quiet" not in analysis.drifting_regions()
        assert "r" in analysis.drifting_regions()

    def test_mixed_windows_and_sets(self):
        windows = window_profiles(make_tracer(), 2)
        extra = windows[-1].measurements
        analysis = temporal_analysis(list(windows) + [extra])
        assert analysis.n_windows == 3

    def test_mixed_inputs_with_mismatched_regions_rejected(self):
        windows = window_profiles(make_tracer(), 2)
        alien = MeasurementSet(np.ones((1, 1, 2)), regions=("other",),
                               activities=("X",))
        with pytest.raises(MeasurementError):
            temporal_analysis(list(windows) + [alien])

    def test_heterogeneous_processor_counts_fall_back(self):
        """Sets with different P cannot stack; the per-window fallback
        must still produce trends."""
        wide = np.zeros((1, 1, 4))
        wide[0, 0] = [1.4, 0.6, 1.0, 1.0]
        analysis = temporal_analysis(
            [skewed_set(0.0), skewed_set(0.2),
             MeasurementSet(wide, regions=("r",), activities=("X",))])
        assert analysis.n_windows == 3
        assert analysis.trend("r").series[-1] > 0.0

    def test_activity_trends_on_homogeneous_windows(self):
        analysis = temporal_analysis(window_profiles(make_tracer(), 3))
        trend = analysis.activity_trend("computation")
        assert len(trend.series) == 3
        with pytest.raises(MeasurementError):
            analysis.activity_trend("quantum")

    def test_phases_of_overall_series(self):
        analysis = temporal_analysis(
            [skewed_set(0.0)] * 3 + [skewed_set(0.5)] * 3)
        phases = analysis.phases()
        assert len(phases) == 2
        assert phases[1].begin == 3
