"""Degradation-tolerant trace ingestion: salvage semantics.

The contract, for every supported format: truncating a trace file at
*any* byte offset either returns a salvaged prefix of the original
events (with a :class:`TraceWarning`) or raises :class:`TraceError` —
never an unhandled exception, and never events that were not in the
original file.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError, TraceWarning
from repro.instrument import (TraceEvent, read_any, read_binary_trace,
                              read_trace, write_binary_trace, write_trace)


def sample_events():
    return [
        TraceEvent(rank % 4, f"region {rank % 3}",
                   ("computation", "point-to-point")[rank % 2],
                   float(rank), float(rank) + 0.5,
                   kind=("compute", "send")[rank % 2],
                   nbytes=rank * 100, partner=(rank + 1) % 4)
        for rank in range(12)
    ]


def read_salvaged(reader, path):
    """Read tolerating (and hiding) the salvage warning; returns the
    events or raises TraceError."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceWarning)
        return reader(path)


class TestBinaryTruncationProperty:
    @settings(max_examples=120, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000))
    def test_any_offset_salvages_a_prefix_or_raises(self, tmp_path_factory,
                                                    offset):
        events = sample_events()
        directory = tmp_path_factory.mktemp("bin")
        full = directory / "full.rptb"
        write_binary_trace(full, events)
        data = full.read_bytes()
        cut = directory / "cut.rptb"
        cut.write_bytes(data[:min(offset, len(data))])
        try:
            got = read_salvaged(read_binary_trace, cut)
        except TraceError:
            return
        assert got == events[:len(got)]    # a prefix, nothing invented
        if min(offset, len(data)) < len(data):
            assert len(got) < len(events)

    def test_full_file_reads_clean_without_warning(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        with warnings.catch_warnings():
            warnings.simplefilter("error", TraceWarning)
            assert read_binary_trace(path) == sample_events()

    def test_truncation_warns_with_counts(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes()[:-50])
        with pytest.warns(TraceWarning, match="salvaged"):
            read_binary_trace(path)


class TestJsonlTruncationProperty:
    @settings(max_examples=100, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000))
    def test_any_offset_salvages_a_prefix_or_raises(self, tmp_path_factory,
                                                    offset):
        events = sample_events()
        directory = tmp_path_factory.mktemp("jsonl")
        full = directory / "full.jsonl"
        write_trace(full, events)
        data = full.read_bytes()
        cut = directory / "cut.jsonl"
        cut.write_bytes(data[:min(offset, len(data))])
        try:
            got = read_salvaged(read_trace, cut)
        except TraceError:
            return
        assert got == events[:len(got)]

    @settings(max_examples=60, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=4_000))
    def test_gzip_truncation(self, tmp_path_factory, offset):
        events = sample_events()
        directory = tmp_path_factory.mktemp("gz")
        full = directory / "full.jsonl.gz"
        write_trace(full, events)
        data = full.read_bytes()
        cut = directory / "cut.jsonl.gz"
        cut.write_bytes(data[:min(offset, len(data))])
        try:
            got = read_salvaged(read_trace, cut)
        except TraceError:
            return
        assert got == events[:len(got)]


class TestReadAnyDispatch:
    def test_read_any_salvages_binary(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes()[:-19])    # half a record
        with pytest.warns(TraceWarning):
            got = read_any(path)
        assert got == sample_events()[:-1]

    def test_read_any_strict_mode(self, tmp_path):
        path = tmp_path / "t.rptb"
        write_binary_trace(path, sample_events())
        path.write_bytes(path.read_bytes()[:-19])
        with pytest.raises(TraceError):
            read_any(path, on_error="raise")

    def test_salvaged_trace_still_profiles(self, tmp_path):
        from repro.core import analyze
        from repro.instrument import Tracer, profile
        from repro.simmpi import Simulator

        def program(comm):
            with comm.region("work"):
                yield from comm.compute(1e-3 * (comm.rank + 1))
                yield from comm.barrier()

        tracer = Tracer()
        Simulator(4, trace_sink=tracer.record).run(program)
        path = tmp_path / "run.rptb"
        write_binary_trace(path, tracer.events)
        path.write_bytes(path.read_bytes()[:-19])
        with pytest.warns(TraceWarning):
            salvaged = Tracer()
            salvaged.extend(read_any(path))
        analysis = analyze(profile(salvaged))
        assert analysis.region_ranking.ordered[0].name == "work"
