"""Tests for the machine presets and the ASCII timeline view."""

import pytest

from repro.errors import SimulationError, TraceError
from repro.instrument import Tracer
from repro.simmpi import (MACHINES, SP2, Simulator, machine,
                          multi_frame_sp2)
from repro.viz import render_timeline


class TestMachines:
    def test_lookup(self):
        assert machine("sp2") is SP2

    def test_all_presets_valid(self):
        for name, model in MACHINES.items():
            assert model.transfer_time(1024, 0, 1) > 0.0, name

    def test_unknown_machine(self):
        with pytest.raises(SimulationError):
            machine("cray-t3d")

    def test_regimes_ordered(self):
        """Latency regimes: shm < fast < sp2 < commodity."""
        latencies = [machine(name).latency
                     for name in ("shm", "fast", "sp2", "commodity")]
        assert latencies == sorted(latencies)

    def test_multi_frame_penalty(self):
        model = multi_frame_sp2(frame_size=4, inter_frame_penalty=3.0)
        intra = model.transfer_time(1000, 0, 3)
        inter = model.transfer_time(1000, 0, 4)
        assert inter == pytest.approx(3.0 * intra)

    def test_multi_frame_validation(self):
        with pytest.raises(SimulationError):
            multi_frame_sp2(frame_size=0)
        with pytest.raises(SimulationError):
            multi_frame_sp2(inter_frame_penalty=0.5)

    def test_multi_frame_shows_up_in_simulation(self):
        """Cross-frame ring exchanges take visibly longer."""
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield from comm.sendrecv(right, 64 * 1024, left)

        uniform = Simulator(8, network=SP2).run(program)
        framed = Simulator(
            8, network=multi_frame_sp2(frame_size=4)).run(program)
        assert framed.elapsed > uniform.elapsed


class TestTimeline:
    def make_tracer(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 0.6)
        tracer.record(0, "r", "synchronization", 0.6, 1.0, kind="wait")
        tracer.record(1, "r", "computation", 0.0, 1.0)
        return tracer

    def test_basic_render(self):
        text = render_timeline(self.make_tracer(), width=20)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert lines[1].startswith("rank 0")
        assert lines[2].startswith("rank 1")
        assert "legend" in lines[-1]

    def test_activities_visible(self):
        text = render_timeline(self.make_tracer(), width=20)
        rank0 = [line for line in text.splitlines()
                 if line.startswith("rank 0")][0]
        assert "#" in rank0 and "|" in rank0
        rank1 = [line for line in text.splitlines()
                 if line.startswith("rank 1")][0]
        assert set(rank1.split()[-1]) == {"#"}

    def test_idle_shown(self):
        tracer = Tracer()
        tracer.record(0, "r", "computation", 0.0, 0.1)
        tracer.record(0, "r", "computation", 0.9, 1.0)
        text = render_timeline(tracer, width=20)
        row = text.splitlines()[1]
        assert "." in row

    def test_rank_subset(self):
        text = render_timeline(self.make_tracer(), width=20, ranks=[1])
        assert "rank 0" not in text
        assert "rank 1" in text

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            render_timeline(Tracer())

    def test_rejects_narrow(self):
        with pytest.raises(TraceError):
            render_timeline(self.make_tracer(), width=5)

    def test_cfd_timeline_has_all_activities(self, cfd_run):
        _, tracer, _ = cfd_run
        text = render_timeline(tracer, width=72, ranks=[0, 15])
        body = "".join(line.split(" ", 2)[-1]
                       for line in text.splitlines()[1:-1])
        assert "#" in body and "=" in body
