"""Property-based tests for the extension modules.

Invariants of comparison, temporal analysis, counters and the trace
reader's robustness to corruption.
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import MeasurementSet, compare, temporal_analysis
from repro.errors import ReproError, TraceError, TraceWarning
from repro.instrument import TraceEvent, read_trace, write_trace

tensors = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=6),
).flatmap(lambda shape: hnp.arrays(
    np.float64, shape,
    elements=st.one_of(st.just(0.0),
                       st.floats(min_value=1e-3, max_value=100.0))))


def valid(tensor):
    # Every region must have some time for region-level comparisons.
    if tensor.sum() <= 0.0 or (tensor.sum(axis=(1, 2)) <= 0.0).any():
        return None
    return MeasurementSet(tensor)


class TestComparisonProperties:
    @settings(max_examples=80)
    @given(tensors)
    def test_self_comparison_is_neutral(self, tensor):
        ms = valid(tensor)
        if ms is None:
            return
        report = compare(ms, ms)
        assert report.speedup == pytest.approx(1.0)
        assert not report.time_regressions
        assert not report.imbalance_regressions
        for delta in report.regions:
            assert delta.speedup == pytest.approx(1.0)
            assert delta.index_change == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=60)
    @given(tensors, st.floats(min_value=0.2, max_value=5.0))
    def test_uniform_scaling_gives_reciprocal_speedup(self, tensor, scale):
        ms = valid(tensor)
        if ms is None:
            return
        scaled = MeasurementSet(tensor * scale)
        forward = compare(ms, scaled)
        backward = compare(scaled, ms)
        assert forward.speedup == pytest.approx(1.0 / scale, rel=1e-9)
        assert forward.speedup * backward.speedup == pytest.approx(
            1.0, rel=1e-9)

    @settings(max_examples=60)
    @given(tensors, st.floats(min_value=0.2, max_value=5.0))
    def test_uniform_scaling_never_changes_indices(self, tensor, scale):
        ms = valid(tensor)
        if ms is None:
            return
        report = compare(ms, MeasurementSet(tensor * scale))
        for delta in report.regions:
            assert delta.index_change == pytest.approx(0.0, abs=1e-9)


class TestTemporalProperties:
    @settings(max_examples=60)
    @given(tensors, st.integers(min_value=2, max_value=5))
    def test_constant_windows_are_flat(self, tensor, n_windows):
        ms = valid(tensor)
        if ms is None:
            return
        analysis = temporal_analysis([ms] * n_windows)
        for trend in analysis.trends:
            assert trend.slope == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=60)
    @given(tensors, st.integers(min_value=2, max_value=5))
    def test_series_lengths(self, tensor, n_windows):
        ms = valid(tensor)
        if ms is None:
            return
        analysis = temporal_analysis([ms] * n_windows)
        assert analysis.n_windows == n_windows
        for trend in analysis.trends:
            assert len(trend.series) == n_windows


class TestTraceReaderRobustness:
    def sample(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            TraceEvent(0, "r", "computation", 0.0, 1.0),
            TraceEvent(1, "r", "point-to-point", 0.0, 2.0, kind="send",
                       nbytes=10, partner=0),
        ])
        return path

    @settings(max_examples=60, deadline=None)
    @given(position=st.integers(min_value=0, max_value=400),
           garbage=st.text(min_size=1, max_size=20))
    def test_corruption_never_crashes(self, tmp_path_factory, position,
                                      garbage):
        """Arbitrary text splices either still parse (if harmless, e.g.
        inside a string field) or raise TraceError — never an unhandled
        exception."""
        path = self.sample(tmp_path_factory.mktemp("fuzz"))
        content = path.read_text()
        position = min(position, len(content))
        path.write_text(content[:position] + garbage + content[position:])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TraceWarning)
            try:
                read_trace(path)
            except ReproError:
                pass    # detected corruption: the contract

    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=300))
    def test_truncation_never_crashes(self, tmp_path_factory, cut):
        path = self.sample(tmp_path_factory.mktemp("trunc"))
        content = path.read_text()
        path.write_text(content[:max(0, len(content) - cut)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TraceWarning)
            try:
                read_trace(path)
            except TraceError:
                pass


class TestInjectorPredictionClosesTheLoop:
    """Measured dispersion on a jitter-free synthetic run must equal the
    injector's analytical prediction — end-to-end model validation."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=7),
           st.floats(min_value=1.05, max_value=3.0),
           st.integers(min_value=2, max_value=8))
    def test_straggler_prediction(self, rank, factor, size):
        from repro.apps import (RegionSpec, Straggler, SyntheticWorkload,
                                predicted_dispersion)
        from repro.core import dispersion_matrix
        rank %= size
        injector = Straggler(rank=rank, factor_value=factor)
        workload = SyntheticWorkload(regions=(
            RegionSpec(name="k", compute=1e-3, injector=injector),))
        _, _, measurements = workload.run(size)
        matrix = dispersion_matrix(measurements)
        comp = measurements.activity_index("computation")
        assert matrix[0, comp] == pytest.approx(
            predicted_dispersion(injector, size), rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.01, max_value=0.8),
           st.integers(min_value=2, max_value=10))
    def test_gradient_prediction(self, amplitude, size):
        from repro.apps import (LinearGradient, RegionSpec,
                                SyntheticWorkload, predicted_dispersion)
        from repro.core import dispersion_matrix
        injector = LinearGradient(amplitude=amplitude)
        workload = SyntheticWorkload(regions=(
            RegionSpec(name="k", compute=1e-3, injector=injector),))
        _, _, measurements = workload.run(size)
        matrix = dispersion_matrix(measurements)
        comp = measurements.activity_index("computation")
        assert matrix[0, comp] == pytest.approx(
            predicted_dispersion(injector, size), rel=1e-9)
