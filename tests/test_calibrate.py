"""Tests of the paper-data constants and the dataset reconstruction."""

import numpy as np
import pytest

from repro.calibrate import (DESIGNATED_PROCESSOR, paper_data, reconstruct,
                             shares, spotlight, times_from_shares, verify)
from repro.calibrate.directions import direction_from_shape
from repro.errors import CalibrationError


class TestPaperDataConsistency:
    """The published tables must be internally consistent."""

    def test_overall_column_matches_row_sums(self):
        np.testing.assert_allclose(paper_data.TABLE_1.sum(axis=1),
                                   paper_data.TABLE_1_OVERALL, atol=5e-4)

    def test_dashes_agree_between_tables(self):
        assert np.array_equal(paper_data.TABLE_1 > 0,
                              ~np.isnan(paper_data.TABLE_2))

    def test_recomputed_id_a_matches_printed(self):
        recomputed = paper_data.recomputed_id_a()
        for activity, printed in paper_data.TABLE_3_ID_A.items():
            assert recomputed[activity] == pytest.approx(printed, abs=4e-4)

    def test_recomputed_id_c_matches_printed(self):
        recomputed = paper_data.recomputed_id_c()
        for region, printed in paper_data.TABLE_4_ID_C.items():
            assert recomputed[region] == pytest.approx(printed, abs=2e-4)

    def test_derived_total_time(self):
        # T ~ 69.9 s; the loops cover 64.754 s (~92.6%).
        assert paper_data.TOTAL_TIME == pytest.approx(69.9, abs=0.15)
        assert paper_data.loops_total_time() == pytest.approx(64.754)

    def test_scaled_indices_reconstruct_from_t(self):
        id_a = paper_data.recomputed_id_a()
        activity_times = paper_data.TABLE_1.sum(axis=0)
        for j, activity in enumerate(paper_data.ACTIVITIES):
            sid = id_a[activity] * activity_times[j] / paper_data.TOTAL_TIME
            assert sid == pytest.approx(paper_data.TABLE_3_SID_A[activity],
                                        abs=2e-5)

    def test_loop1_share_of_program(self):
        share = paper_data.TABLE_1_OVERALL[0] / paper_data.TOTAL_TIME
        assert share == pytest.approx(0.27, abs=0.005)


class TestDirections:
    def test_spotlight_is_unit_and_zero_mean(self):
        direction = spotlight(16, 3, +1)
        assert direction.sum() == pytest.approx(0.0, abs=1e-12)
        assert np.linalg.norm(direction) == pytest.approx(1.0)
        assert direction[3] == direction.max()

    def test_spotlight_negative(self):
        direction = spotlight(16, 3, -1)
        assert direction[3] == direction.min()

    def test_shares_hit_requested_dispersion(self):
        values = shares(16, 0.1, spotlight(16, 0, +1))
        assert values.sum() == pytest.approx(1.0)
        assert np.linalg.norm(values - values.mean()) == pytest.approx(0.1)

    def test_shares_reject_negative_result(self):
        with pytest.raises(CalibrationError):
            shares(16, 0.9, spotlight(16, 0, -1))

    def test_times_from_shares_max_convention(self):
        values = times_from_shares(shares(4, 0.1, spotlight(4, 1, +1)), 7.0)
        assert values.max() == pytest.approx(7.0)

    def test_direction_from_shape_banding_preserved(self):
        shape = np.array([0.0, 0.1, 1.0, 5.0])
        direction = direction_from_shape(shape)
        assert np.argmax(direction) == 3
        assert np.argmin(direction) == 0

    def test_constant_shape_rejected(self):
        with pytest.raises(CalibrationError):
            direction_from_shape([1.0, 1.0])


class TestReconstruction:
    def test_all_constraints_hold(self, paper_measurements):
        report = verify(paper_measurements)
        assert report.passed, report.describe_failures()

    def test_table1_exact(self, paper_measurements):
        np.testing.assert_allclose(paper_measurements.region_activity_times,
                                   paper_data.TABLE_1, atol=1e-12)

    def test_table2_machine_precision(self, paper_measurements):
        from repro.core import dispersion_matrix
        matrix = dispersion_matrix(paper_measurements)
        mask = ~np.isnan(paper_data.TABLE_2)
        np.testing.assert_allclose(matrix[mask], paper_data.TABLE_2[mask],
                                   atol=1e-9)

    def test_processor_winners(self, paper_measurements):
        from repro.core import compute_processor_view
        view = compute_processor_view(paper_measurements)
        for region, processor in DESIGNATED_PROCESSOR.items():
            assert view.most_imbalanced_processor(region) == processor

    def test_longest_imbalanced_values(self, paper_measurements):
        from repro.core import compute_processor_view
        view = compute_processor_view(paper_measurements)
        loop1 = paper_measurements.region_index("loop 1")
        assert view.dispersion[loop1, 1] == pytest.approx(0.25754, abs=1e-6)
        own = paper_measurements.processor_region_times()[loop1, 1]
        assert own == pytest.approx(15.93, abs=1e-6)

    def test_total_time_carried(self, paper_measurements):
        assert paper_measurements.total_time == pytest.approx(
            paper_data.TOTAL_TIME)

    def test_deterministic(self, paper_measurements):
        again = reconstruct()
        np.testing.assert_allclose(paper_measurements.times, again.times,
                                   atol=1e-12)

    def test_verify_flags_corruption(self, paper_measurements):
        from repro.core import MeasurementSet
        corrupted = paper_measurements.times.copy()
        corrupted[0, 0, :] *= 1.5          # break loop 1 computation
        bad = MeasurementSet(corrupted, paper_measurements.regions,
                             paper_measurements.activities,
                             total_time=paper_measurements.total_time * 2)
        report = verify(bad)
        assert not report.passed
        assert "table 1" in report.describe_failures()
