"""Tests for the fault-injection subsystem.

Covers the fault plan's validation and determinism, the engine hooks
(stragglers, link degradation, drops with retransmission, crashes with
checkpoint/restart recovery), the zero-overhead guarantee of the
healthy path, the recovery-time attribution, and the blame-localization
campaign.
"""

import numpy as np
import pytest

from repro.apps.cfd import CFDConfig, cfd_program, LOOPS
from repro.core import analyze
from repro.errors import FaultError
from repro.faults import (HEALTHY, CampaignApp, CampaignCase, FaultPlan,
                          LinkDegradation, MessageDrop, MessageJitter,
                          RankCrash, RetryPolicy, Straggler,
                          default_campaign, run_campaign, run_case)
from repro.instrument import Tracer, profile
from repro.simmpi import NetworkModel, Simulator

FAST = NetworkModel(latency=1e-5, bandwidth=1e8, overhead=1e-6,
                    eager_threshold=64 * 1024)


def ring_program(comm):
    with comm.region("step"):
        yield from comm.compute(1e-3 * (1.0 + 0.1 * comm.rank))
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.sendrecv(right, 4096, left)
        yield from comm.barrier()


def run_ring(plan, n_ranks=4):
    tracer = Tracer()
    simulator = Simulator(n_ranks, network=FAST, trace_sink=tracer.record,
                          fault_plan=plan)
    result = simulator.run(ring_program)
    return result, tracer


class TestPlanValidation:
    def test_straggler_factor_below_one(self):
        with pytest.raises(FaultError):
            Straggler(rank=0, factor=0.5)

    def test_straggler_bad_window(self):
        with pytest.raises(FaultError):
            Straggler(rank=0, factor=2.0, start=1.0, end=0.5)

    def test_negative_rank(self):
        with pytest.raises(FaultError):
            Straggler(rank=-1, factor=2.0)

    def test_drop_probability_range(self):
        with pytest.raises(FaultError):
            MessageDrop(probability=1.0, src=0, dst=1)
        with pytest.raises(FaultError):
            MessageDrop(probability=-0.1, src=0, dst=1)

    def test_link_factor_below_one(self):
        with pytest.raises(FaultError):
            LinkDegradation(src=0, dst=1, factor=0.9)

    def test_self_link(self):
        with pytest.raises(FaultError):
            LinkDegradation(src=2, dst=2, factor=2.0)

    def test_retry_policy_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff=0.5)

    def test_two_crashes_same_rank_rejected(self):
        crash = RankCrash(rank=0, at_time=1.0, checkpoint_interval=0.5,
                          restart_time=0.1)
        with pytest.raises(FaultError):
            FaultPlan((crash, crash))

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(("not a fault",))

    def test_describe_lists_every_fault(self):
        plan = FaultPlan((Straggler(rank=1, factor=2.0),
                          MessageJitter(amplitude=1e-4)))
        text = plan.describe()
        assert "straggler" in text and "jitter" in text


class TestZeroOverhead:
    """No plan and the empty plan must reproduce the healthy run
    byte-for-byte (the golden-report acceptance criterion)."""

    def test_none_plan_equals_empty_plan(self):
        result_none, tracer_none = run_ring(None)
        result_empty, tracer_empty = run_ring(HEALTHY)
        assert result_none.clocks == result_empty.clocks
        assert tracer_none.events == tracer_empty.events

    def test_cfd_trace_identical_under_empty_plan(self):
        config = CFDConfig(steps=1)
        traces = []
        for plan in (None, FaultPlan()):
            tracer = Tracer()
            Simulator(8, trace_sink=tracer.record,
                      fault_plan=plan).run(cfd_program, config)
            traces.append(tracer.events)
        assert traces[0] == traces[1]


class TestDeterminism:
    def test_same_plan_same_trace(self):
        plan = FaultPlan((MessageDrop(probability=0.3, src=0, dst=1),
                          MessageJitter(amplitude=1e-4)),
                         seed=42,
                         retry=RetryPolicy(timeout=5e-4, max_retries=6))
        _, tracer_a = run_ring(plan)
        _, tracer_b = run_ring(plan)
        assert tracer_a.events == tracer_b.events

    def test_different_seed_different_schedule(self):
        def plan(seed):
            return FaultPlan((MessageJitter(amplitude=1e-3),), seed=seed)
        result_a, _ = run_ring(plan(1))
        result_b, _ = run_ring(plan(2))
        assert result_a.clocks != result_b.clocks

    def test_delivery_penalty_is_pure(self):
        plan = FaultPlan((MessageDrop(probability=0.5, src=0, dst=1),),
                         seed=7, retry=RetryPolicy(max_retries=10))
        first = [plan.delivery_penalty(seq, 0, 1, 1e-4)
                 for seq in range(50)]
        second = [plan.delivery_penalty(seq, 0, 1, 1e-4)
                  for seq in range(50)]
        assert first == second
        assert any(retries > 0 for _, retries in first)


class TestStraggler:
    def test_persistent_straggler_slows_compute(self):
        healthy, _ = run_ring(None)
        slowed, _ = run_ring(FaultPlan((Straggler(rank=2, factor=3.0),)))
        assert slowed.elapsed > healthy.elapsed

    def test_effective_compute_persistent(self):
        plan = FaultPlan((Straggler(rank=1, factor=2.0),))
        assert plan.effective_compute(1, 0.0, 1.0) == pytest.approx(2.0)
        assert plan.effective_compute(0, 0.0, 1.0) == pytest.approx(1.0)

    def test_effective_compute_transient_window(self):
        # Slowdown 3x inside [1, 2): 2 s of work starting at t=0.5 does
        # 0.5 work before the window, 1/3 work during it, and the rest
        # after: 0.5 + 1.0 + (2 - 0.5 - 1/3) = 8/3 s of wall clock.
        plan = FaultPlan((Straggler(rank=0, factor=3.0, start=1.0,
                                    end=2.0),))
        assert plan.effective_compute(0, 0.5, 2.0) == pytest.approx(8.0 / 3.0)
        # Fully outside the window: unchanged.
        assert plan.effective_compute(0, 2.0, 1.0) == pytest.approx(1.0)


class TestLinkDegradation:
    def test_wrap_network_scales_one_link(self):
        plan = FaultPlan((LinkDegradation(src=0, dst=1, factor=10.0),))
        network = plan.wrap_network(FAST)
        nbytes = 32 * 1024
        assert network.transfer_time(nbytes, 0, 1) == pytest.approx(
            10.0 * FAST.transfer_time(nbytes, 0, 1))
        assert network.transfer_time(nbytes, 1, 0) == pytest.approx(
            10.0 * FAST.transfer_time(nbytes, 1, 0))
        assert network.transfer_time(nbytes, 2, 3) == pytest.approx(
            FAST.transfer_time(nbytes, 2, 3))

    def test_asymmetric_degradation(self):
        plan = FaultPlan((LinkDegradation(src=0, dst=1, factor=10.0,
                                          symmetric=False),))
        network = plan.wrap_network(FAST)
        nbytes = 32 * 1024
        assert network.transfer_time(nbytes, 0, 1) > \
            2.0 * network.transfer_time(nbytes, 1, 0)

    def test_no_links_returns_network_unchanged(self):
        plan = FaultPlan((Straggler(rank=0, factor=2.0),))
        assert plan.wrap_network(FAST) is FAST


class TestDropsAndRetries:
    def test_drops_delay_but_run_completes(self):
        plan = FaultPlan((MessageDrop(probability=0.4, src=0, dst=1,
                                      symmetric=True),),
                         seed=5,
                         retry=RetryPolicy(timeout=1e-4, max_retries=12))
        healthy, _ = run_ring(None)
        dropped, _ = run_ring(plan)
        assert dropped.elapsed > healthy.elapsed

    def test_message_lost_beyond_budget_raises(self):
        plan = FaultPlan((MessageDrop(probability=0.9, src=0, dst=1),),
                         seed=1, retry=RetryPolicy(max_retries=0))
        with pytest.raises(FaultError):
            run_ring(plan)


class TestCrashRecovery:
    def test_lost_work_measured_from_last_checkpoint(self):
        crash = RankCrash(rank=0, at_time=1.0, checkpoint_interval=0.4,
                          restart_time=0.1)
        assert crash.lost_work(1.0) == pytest.approx(0.2)
        intervals = dict((activity, duration) for duration, activity
                         in crash.recovery_intervals(1.0))
        assert intervals["i/o"] == pytest.approx(0.1)
        assert intervals["computation"] == pytest.approx(0.2)

    def test_replay_factor_scales_recompute(self):
        crash = RankCrash(rank=0, at_time=1.0, checkpoint_interval=0.4,
                          restart_time=0.1, replay_factor=0.5)
        intervals = dict((activity, duration) for duration, activity
                         in crash.recovery_intervals(1.0))
        assert intervals["computation"] == pytest.approx(0.1)

    def test_crash_traces_recovery_under_current_region(self):
        plan = FaultPlan((RankCrash(rank=1, at_time=5e-4,
                                    checkpoint_interval=2e-4,
                                    restart_time=1e-3),))
        result, tracer = run_ring(plan)
        recovery = [event for event in tracer.events
                    if event.rank == 1 and event.activity == "i/o"]
        assert len(recovery) == 1
        assert recovery[0].region == "step"
        assert recovery[0].duration == pytest.approx(1e-3)

    def test_crash_slows_only_the_crashed_rank_directly(self):
        plan = FaultPlan((RankCrash(rank=2, at_time=5e-4,
                                    checkpoint_interval=1e-3,
                                    restart_time=2e-3),))
        healthy, _ = run_ring(None)
        crashed, _ = run_ring(plan)
        assert crashed.clocks[2] > healthy.clocks[2]


class TestCampaign:
    def test_default_campaign_is_perfect(self):
        report = run_campaign()
        assert report.precision == pytest.approx(1.0)
        assert report.recall == pytest.approx(1.0)
        assert report.perfect

    def test_campaign_covers_four_fault_kinds_and_two_apps(self):
        cases = default_campaign()
        kinds = {type(case.plan.faults[0]) for case in cases}
        assert kinds == {Straggler, LinkDegradation, MessageDrop,
                         RankCrash}
        assert {case.app.name for case in cases} == {"cfd", "checkpoint"}

    def test_render_contains_scores(self):
        report = run_campaign()
        text = report.render()
        assert "precision=1.00" in text
        assert "recall=1.00" in text

    def test_multiselect_criterion_trades_precision_for_recall(self):
        report = run_campaign(criterion="elbow")
        assert report.recall == pytest.approx(1.0)
        assert report.precision < 1.0

    def test_case_expectations_validated(self):
        app = CampaignApp(name="cfd", program=cfd_program,
                          config=CFDConfig(steps=1), regions=LOOPS)
        with pytest.raises(FaultError):
            CampaignCase(name="bad", app=app, plan=HEALTHY,
                         expected_region="nonexistent",
                         expected_activity="computation",
                         expected_ranks=(0,))

    def test_run_case_reports_blame(self):
        cases = default_campaign()
        result = run_case(cases[0])
        assert result.top.region == cases[0].expected_region
        assert result.top.processor in cases[0].expected_ranks
        assert result.localized


class TestMissingRankTolerance:
    def test_analysis_tolerates_masked_processor(self):
        _, tracer = run_ring(None, n_ranks=6)
        measurements = profile(tracer)
        # Simulate a rank whose events were lost with the trace.
        times = measurements.times.copy()
        times[:, :, 4] = 0.0
        from repro.core import MeasurementSet
        damaged = MeasurementSet(times, measurements.regions,
                                 measurements.activities)
        assert damaged.missing_processors() == (4,)
        masked = damaged.without_missing_processors()
        assert masked.n_processors == 5
        analysis = analyze(masked)
        assert analysis.region_ranking.ordered
