"""Property tests for the streaming engine (Hypothesis).

The invariants the one-pass design rests on:

* chunking is irrelevant — however an event stream is cut into chunks,
  the finalized measurements are bit-identical to the eager profile
  (per-cell additions happen in the same event order);
* sharding is irrelevant up to summation rounding — any partition of
  the stream into consecutive segments, accumulated independently and
  merged in order, agrees to 1e-12 with the same labels;
* merging is associative, and finalized *values* are insensitive to
  merge order (label order follows the merge sequence, so values are
  compared by label);
* a randomly truncated trace file streams exactly like it reads
  eagerly: both paths salvage the same prefix or both raise.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OnlineAccumulator
from repro.core.online import OUTSIDE_REGION
from repro.errors import TraceError, TraceWarning
from repro.instrument import (TraceEvent, Tracer, iter_binary_trace,
                              iter_trace, profile, read_binary_trace,
                              read_trace, write_binary_trace, write_trace)

REGIONS = ("alpha", "beta", "gamma")
ACTIVITIES = ("computation", "point-to-point", "collective",
              "synchronization", "io phase")


@st.composite
def annotated_traces(draw, max_size=50):
    """Event lists with at least one annotated event.  Times are
    dyadic rationals, so every duration and sum is exact in binary
    floating point (bit-identity assertions stay meaningful)."""

    def event(rank, region, activity, begin_units, duration_units):
        return TraceEvent(rank, region, activity, begin_units / 16.0,
                          (begin_units + duration_units) / 16.0)

    events = draw(st.lists(
        st.builds(event,
                  rank=st.integers(0, 3),
                  region=st.sampled_from(REGIONS + (OUTSIDE_REGION,)),
                  activity=st.sampled_from(ACTIVITIES),
                  begin_units=st.integers(0, 512),
                  duration_units=st.integers(0, 64)),
        max_size=max_size))
    events.append(event(draw(st.integers(0, 3)),
                        draw(st.sampled_from(REGIONS)),
                        draw(st.sampled_from(ACTIVITIES)),
                        draw(st.integers(0, 512)),
                        draw(st.integers(1, 64))))
    return events


def eager_profile(events):
    tracer = Tracer()
    tracer.extend(events)
    return profile(tracer)


def partition(events, sizes):
    """Cut ``events`` into consecutive segments of the given relative
    sizes (at least one segment; sizes normalized to the list)."""
    cuts = [0]
    remaining = len(events)
    for size in sizes:
        cuts.append(min(cuts[-1] + size, len(events)))
    cuts.append(len(events))
    return [events[lo:hi] for lo, hi in zip(cuts, cuts[1:]) if hi > lo] \
        or [events]


def values_by_label(measurements):
    """{(region, activity, rank): value} — the label-indexed tensor,
    for order-insensitive comparison."""
    return {
        (region, activity, rank): measurements.times[i, j, rank]
        for i, region in enumerate(measurements.regions)
        for j, activity in enumerate(measurements.activities)
        for rank in range(measurements.n_processors)
    }


class TestChunkingInvariance:
    @settings(max_examples=60, deadline=None)
    @given(events=annotated_traces(),
           chunk_sizes=st.lists(st.integers(1, 17), min_size=1,
                                max_size=8))
    def test_any_chunking_is_bit_identical_to_profile(self, events,
                                                      chunk_sizes):
        reference = eager_profile(events)
        accumulator = OnlineAccumulator()
        position = 0
        index = 0
        while position < len(events):
            size = chunk_sizes[index % len(chunk_sizes)]
            accumulator.update(events[position:position + size])
            position += size
            index += 1
        streamed = accumulator.finalize()
        assert streamed.regions == reference.regions
        assert streamed.activities == reference.activities
        assert np.array_equal(streamed.times, reference.times)
        assert streamed.total_time == reference.total_time


class TestShardingInvariance:
    @settings(max_examples=60, deadline=None)
    @given(events=annotated_traces(),
           sizes=st.lists(st.integers(1, 20), min_size=1, max_size=6))
    def test_any_consecutive_partition_merges_to_the_profile(self, events,
                                                             sizes):
        reference = eager_profile(events)
        parts = [OnlineAccumulator().update(segment)
                 for segment in partition(events, sizes)]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        streamed = merged.finalize()
        assert streamed.regions == reference.regions
        assert streamed.activities == reference.activities
        np.testing.assert_allclose(streamed.times, reference.times,
                                   rtol=0, atol=1e-12)
        assert abs(streamed.total_time - reference.total_time) <= 1e-12


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(events=annotated_traces(), cut_a=st.integers(0, 50),
           cut_b=st.integers(0, 50))
    def test_merge_is_associative(self, events, cut_a, cut_b):
        lo, hi = sorted((min(cut_a, len(events)), min(cut_b, len(events))))
        a = OnlineAccumulator().update(events[:lo])
        b = OnlineAccumulator().update(events[lo:hi])
        c = OnlineAccumulator().update(events[hi:])
        left = a.merge(b).merge(c).finalize()
        right = a.merge(b.merge(c)).finalize()
        assert left.regions == right.regions
        assert left.activities == right.activities
        np.testing.assert_allclose(left.times, right.times,
                                   rtol=0, atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(events=annotated_traces(), cut=st.integers(0, 50))
    def test_merge_values_are_order_insensitive(self, events, cut):
        """a.merge(b) and b.merge(a) may order labels differently, but
        every (region, activity, rank) cell holds the same value."""
        cut = min(cut, len(events))
        a = OnlineAccumulator().update(events[:cut])
        b = OnlineAccumulator().update(events[cut:])
        forward = a.merge(b).finalize()
        backward = b.merge(a).finalize()
        assert sorted(forward.regions) == sorted(backward.regions)
        assert sorted(forward.activities) == sorted(backward.activities)
        one = values_by_label(forward)
        other = values_by_label(backward)
        assert one.keys() == other.keys()
        assert all(abs(one[key] - other[key]) <= 1e-12 for key in one)
        assert abs(forward.total_time - backward.total_time) <= 1e-12


def stream_salvaged(iterator, path, chunk_size):
    """Drain a streaming reader with warnings hidden, like the eager
    ``read_salvaged`` helper; returns events or raises TraceError."""
    events = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceWarning)
        for chunk in iterator(path, chunk_size=chunk_size):
            events.extend(chunk)
    return events


class TestTruncationParity:
    """Streaming a damaged file behaves exactly like eager reading:
    same salvaged prefix, or both raise."""

    def sample_events(self):
        return [
            TraceEvent(rank % 4, REGIONS[rank % 3], ACTIVITIES[rank % 5],
                       float(rank), float(rank) + 0.5,
                       kind=("compute", "send")[rank % 2],
                       nbytes=rank * 100, partner=(rank + 1) % 4)
            for rank in range(12)
        ]

    def assert_parity(self, eager_reader, iterator, path, chunk_size):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TraceWarning)
            try:
                expected = eager_reader(path)
            except TraceError:
                with pytest.raises(TraceError):
                    stream_salvaged(iterator, path, chunk_size)
                return
        assert stream_salvaged(iterator, path, chunk_size) == expected

    @settings(max_examples=80, deadline=None)
    @given(offset=st.integers(0, 10_000), chunk_size=st.integers(1, 7))
    def test_jsonl_truncation(self, tmp_path_factory, offset, chunk_size):
        directory = tmp_path_factory.mktemp("jsonl")
        path = directory / "t.jsonl"
        write_trace(path, self.sample_events())
        data = path.read_bytes()
        path.write_bytes(data[:min(offset, len(data))])
        self.assert_parity(read_trace, iter_trace, path, chunk_size)

    @settings(max_examples=40, deadline=None)
    @given(offset=st.integers(0, 10_000), chunk_size=st.integers(1, 7))
    def test_gzip_truncation(self, tmp_path_factory, offset, chunk_size):
        directory = tmp_path_factory.mktemp("gz")
        path = directory / "t.jsonl.gz"
        write_trace(path, self.sample_events())
        data = path.read_bytes()
        path.write_bytes(data[:min(offset, len(data))])
        self.assert_parity(read_trace, iter_trace, path, chunk_size)

    @settings(max_examples=80, deadline=None)
    @given(offset=st.integers(0, 10_000), chunk_size=st.integers(1, 7))
    def test_binary_truncation(self, tmp_path_factory, offset, chunk_size):
        directory = tmp_path_factory.mktemp("bin")
        path = directory / "t.rptb"
        write_binary_trace(path, self.sample_events())
        data = path.read_bytes()
        path.write_bytes(data[:min(offset, len(data))])
        self.assert_parity(read_binary_trace, iter_binary_trace, path,
                           chunk_size)

    @settings(max_examples=40, deadline=None)
    @given(position=st.integers(0, 2000), junk=st.binary(min_size=1,
                                                         max_size=8),
           chunk_size=st.integers(1, 7))
    def test_jsonl_corruption(self, tmp_path_factory, position, junk,
                              chunk_size):
        """Overwritten bytes anywhere in the file: still parity."""
        directory = tmp_path_factory.mktemp("corrupt")
        path = directory / "t.jsonl"
        write_trace(path, self.sample_events())
        data = bytearray(path.read_bytes())
        position = min(position, len(data) - 1)
        data[position:position + len(junk)] = junk
        path.write_bytes(bytes(data))
        self.assert_parity(read_trace, iter_trace, path, chunk_size)
