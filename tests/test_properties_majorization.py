"""Property-based tests: majorization is a well-behaved preorder and the
dispersion indices respect it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (euclidean_distance, lorenz_dominates, majorizes,
                        standardize, t_transform, weakly_majorizes)

simplex_vectors = st.lists(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=2, max_size=16,
).map(lambda values: standardize(values))

paired = st.integers(min_value=2, max_value=16).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=n,
                 max_size=n).map(standardize),
        st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=n,
                 max_size=n).map(standardize)))


@given(simplex_vectors)
def test_reflexivity(x):
    assert majorizes(x, x)


@given(simplex_vectors)
def test_permutation_equivalence(x):
    shuffled = np.roll(x, 1)
    assert majorizes(x, shuffled) and majorizes(shuffled, x)


@given(paired)
def test_antisymmetry_up_to_permutation(pair):
    x, y = pair
    if majorizes(x, y) and majorizes(y, x):
        np.testing.assert_allclose(np.sort(x), np.sort(y), atol=1e-7)


@settings(max_examples=200)
@given(st.integers(min_value=2, max_value=12).flatmap(
    lambda n: st.tuples(*[
        st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=n,
                 max_size=n).map(standardize) for _ in range(3)])))
def test_transitivity(triple):
    x, y, z = triple
    if majorizes(x, y) and majorizes(y, z):
        assert majorizes(x, z)


@given(simplex_vectors)
def test_balanced_is_global_minimum(x):
    balanced = np.full(x.size, 1.0 / x.size)
    assert majorizes(x, balanced)


@given(simplex_vectors)
def test_concentrated_is_global_maximum(x):
    top = np.zeros(x.size)
    top[0] = 1.0
    assert majorizes(top, x)


@given(paired)
def test_majorization_equals_lorenz_dominance(pair):
    x, y = pair
    assert majorizes(x, y) == lorenz_dominates(x, y)


@given(paired)
def test_majorization_implies_weak_majorization(pair):
    x, y = pair
    if majorizes(x, y):
        assert weakly_majorizes(x, y)


@given(paired)
def test_euclidean_respects_the_order(pair):
    """If x majorizes y then x is at least as dispersed as y — the
    fundamental requirement for an index of dispersion in the paper's
    majorization framework."""
    x, y = pair
    if majorizes(x, y):
        assert euclidean_distance(x) >= euclidean_distance(y) - 1e-9


@settings(max_examples=150)
@given(simplex_vectors,
       st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                          st.floats(min_value=0.0, max_value=0.5)),
                min_size=1, max_size=8))
def test_t_transform_chains_stay_majorized(x, transfers):
    """Any chain of Robin Hood transfers stays majorized by the start
    (Hardy–Littlewood–Pólya, one direction)."""
    current = x.copy()
    for donor, recipient, fraction in transfers:
        donor %= x.size
        recipient %= x.size
        if donor == recipient:
            continue
        current = t_transform(current, donor, recipient, fraction)
    assert majorizes(x, current)
    assert current.sum() == pytest.approx(1.0)
