"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.instrument import Tracer, write_tracer
from repro.simmpi import Simulator


@pytest.fixture()
def tracefile(tmp_path):
    def program(comm):
        with comm.region("work"):
            yield from comm.compute(1e-3 * (comm.rank + 1))
            yield from comm.allreduce(4096)
            yield from comm.barrier()
        with comm.region("exchange"):
            if comm.rank == 0:
                yield from comm.send(1, 64 * 1024)
            elif comm.rank == 1:
                yield from comm.recv(0)

    tracer = Tracer()
    Simulator(4, trace_sink=tracer.record).run(program)
    path = tmp_path / "run.jsonl"
    write_tracer(path, tracer)
    return str(path)


class TestAnalyzeCommand:
    def test_basic(self, tracefile, capsys):
        assert main(["analyze", tracefile]) == 0
        out = capsys.readouterr().out
        assert "Top-down analysis summary" in out
        assert "work" in out

    def test_patterns_flag(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_lorenz_flag(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--lorenz", "work"]) == 0
        out = capsys.readouterr().out
        assert "Lorenz curve" in out

    def test_alternative_index(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--index", "cv"]) == 0

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "none.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_index_is_an_error(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--index", "nope"]) == 2


class TestPaperCommand:
    def test_reproduces(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "0.25754" not in out or True      # narrative is in report
        assert "loop 1" in out


class TestCfdCommand:
    def test_small_run(self, capsys):
        assert main(["cfd", "--ranks", "4", "--steps", "1",
                     "--grid", "64"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "loop 7" in out

    def test_trace_output(self, tmp_path, capsys):
        trace = tmp_path / "cfd.jsonl.gz"
        assert main(["cfd", "--ranks", "4", "--steps", "1",
                     "--grid", "64", "--trace", str(trace)]) == 0
        assert trace.exists()
        # The written trace is itself analyzable.
        assert main(["analyze", str(trace)]) == 0


class TestCountersCommand:
    def test_messages(self, tracefile, capsys):
        assert main(["counters", tracefile]) == 0
        out = capsys.readouterr().out
        assert "counting parameter: messages" in out

    def test_bytes(self, tracefile, capsys):
        assert main(["counters", tracefile, "--counter", "bytes"]) == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestAnalyzeExtensions:
    def test_diagnose_flag(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--diagnose"]) == 0
        assert "Diagnosis" in capsys.readouterr().out

    def test_timeline_flag(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "rank 0" in out

    def test_significance_flag(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--significance", "0.05"]) == 0
        assert "noise-calibrated threshold" in capsys.readouterr().out


class TestTestbedCommand:
    def test_add_list_show(self, tracefile, tmp_path, capsys):
        directory = str(tmp_path / "tb")
        assert main(["testbed", directory, "add", tracefile,
                     "--program", "demo", "--machine", "sp2",
                     "--tag", "smoke"]) == 0
        trace_id = capsys.readouterr().out.split()[-1]
        assert main(["testbed", directory, "list"]) == 0
        listing = capsys.readouterr().out
        assert "demo on sp2" in listing and "smoke" in listing
        assert main(["testbed", directory, "show", trace_id]) == 0
        assert "Top-down analysis summary" in capsys.readouterr().out

    def test_empty_list(self, tmp_path, capsys):
        assert main(["testbed", str(tmp_path / "tb"), "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show_unknown_id(self, tmp_path, capsys):
        assert main(["testbed", str(tmp_path / "tb"), "show", "nope"]) == 2

    def test_heatmap_and_whatif_flags(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--heatmap", "--whatif"]) == 0
        out = capsys.readouterr().out
        assert "share heatmap" in out
        assert "What-if" in out


class TestBinaryTraceSupport:
    def test_analyze_binary_trace(self, tracefile, tmp_path, capsys):
        from repro.instrument import read_trace, write_binary_trace
        binary = tmp_path / "t.rptb"
        write_binary_trace(binary, read_trace(tracefile))
        assert main(["analyze", str(binary)]) == 0
        assert "Top-down analysis summary" in capsys.readouterr().out

    def test_cfd_writes_binary_when_asked(self, tmp_path, capsys):
        trace = tmp_path / "cfd.rptb"
        assert main(["cfd", "--ranks", "4", "--steps", "1",
                     "--grid", "64", "--trace", str(trace)]) == 0
        from repro.instrument import sniff_format
        assert sniff_format(trace) == "binary"
        assert main(["analyze", str(trace)]) == 0


class TestChromeExportFlag:
    def test_export(self, tracefile, tmp_path, capsys):
        target = tmp_path / "chrome.json"
        assert main(["analyze", tracefile,
                     "--export-chrome", str(target)]) == 0
        assert target.exists()
        import json
        assert json.loads(target.read_text())["traceEvents"]


class TestExitCodeContract:
    """Expected failures exit 2; internal bugs exit 3 without a bare
    traceback; checks that fail exit 1."""

    def test_repro_error_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "none.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_directory_as_tracefile_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_internal_error_exits_3(self, tracefile, capsys, monkeypatch):
        import repro.cli as cli
        def boom(arguments):
            raise RuntimeError("synthetic bug")
        monkeypatch.setitem(cli._COMMANDS, "analyze", boom)
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert main(["analyze", tracefile]) == 3
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "REPRO_DEBUG" in err
        assert "Traceback" not in err

    def test_internal_error_reraises_under_debug(self, tracefile, capsys,
                                                 monkeypatch):
        import repro.cli as cli
        def boom(arguments):
            raise RuntimeError("synthetic bug")
        monkeypatch.setitem(cli._COMMANDS, "analyze", boom)
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(RuntimeError):
            main(["analyze", tracefile])


class TestSalvageFlags:
    def _truncated(self, tracefile, tmp_path):
        import pathlib
        source = pathlib.Path(tracefile)
        lines = source.read_text().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-1]) + "\n")
        return str(cut)

    def test_analyze_salvages_by_default(self, tracefile, tmp_path,
                                         capsys):
        from repro.errors import TraceWarning
        cut = self._truncated(tracefile, tmp_path)
        with pytest.warns(TraceWarning):
            assert main(["analyze", cut]) == 0
        assert "Top-down analysis summary" in capsys.readouterr().out

    def test_analyze_strict_refuses_damage(self, tracefile, tmp_path,
                                           capsys):
        cut = self._truncated(tracefile, tmp_path)
        assert main(["analyze", cut, "--strict"]) == 2
        assert "truncated" in capsys.readouterr().err


class TestFaultsCommand:
    def test_listing_without_campaign(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "straggler/cfd" in out
        assert "--campaign" in out

    def test_campaign_prints_precision_recall(self, capsys):
        assert main(["faults", "--campaign", "--require-perfect"]) == 0
        out = capsys.readouterr().out
        assert "precision=1.00" in out
        assert "recall=1.00" in out
        for case in ("straggler/cfd", "link/cfd", "drop/cfd", "crash/cfd",
                     "straggler/checkpoint", "crash/checkpoint"):
            assert case in out


class TestTemporalCommand:
    def test_basic(self, tracefile, capsys):
        assert main(["temporal", tracefile]) == 0
        out = capsys.readouterr().out
        assert "time-resolved analysis" in out
        assert "work" in out

    def test_phases_and_forecast_flags(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--windows", "6",
                     "--phases", "--forecast", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out.lower()
        assert "forecast" in out.lower()

    def test_heatmap_flag(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert any(level in out for level in "▁▂▃▄▅▆▇█")

    def test_requires_trace_or_sweep(self, capsys):
        assert main(["temporal"]) == 2
        assert "trace file" in capsys.readouterr().err

    def test_bad_window_count(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--windows", "0"]) == 2

    def test_missing_sweep_directory(self, tmp_path, capsys):
        assert main(["temporal", "--sweep", str(tmp_path / "nope")]) == 2

    def test_sweep_directory(self, tracefile, capsys):
        import os
        directory = os.path.dirname(tracefile)
        assert main(["temporal", "--sweep", directory,
                     "--windows", "4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Time-resolved sweep" in out
        assert "run.jsonl" in out

    def test_sweep_uses_cache_on_second_run(self, tracefile, capsys):
        import os
        directory = os.path.dirname(tracefile)
        assert main(["temporal", "--sweep", directory,
                     "--windows", "4"]) == 0
        capsys.readouterr()
        assert main(["temporal", "--sweep", directory,
                     "--windows", "4"]) == 0
        assert "[cached]" in capsys.readouterr().out


class TestStreamFlag:
    """`analyze --stream`: same bytes as the eager path, same exit-code
    contract (0 ok, 1 failed check, 2 usage/data error, 3 internal)."""

    def _eager_output(self, tracefile, capsys, *extra):
        assert main(["analyze", tracefile, *extra]) == 0
        return capsys.readouterr().out

    def test_stream_output_is_byte_identical(self, tracefile, capsys):
        eager = self._eager_output(tracefile, capsys)
        assert main(["analyze", tracefile, "--stream"]) == 0
        assert capsys.readouterr().out == eager

    def test_chunk_size_does_not_change_the_bytes(self, tracefile, capsys):
        eager = self._eager_output(tracefile, capsys)
        assert main(["analyze", tracefile, "--stream",
                     "--chunk-size", "7"]) == 0
        assert capsys.readouterr().out == eager

    def test_sharded_jobs_render_the_same_bytes(self, tracefile, capsys):
        eager = self._eager_output(tracefile, capsys)
        assert main(["analyze", tracefile, "--stream", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_reads_binary_traces(self, tracefile, tmp_path, capsys):
        from repro.instrument import read_trace, write_binary_trace
        binary = tmp_path / "t.rptb"
        write_binary_trace(binary, read_trace(tracefile))
        eager = self._eager_output(tracefile, capsys)
        assert main(["analyze", str(binary), "--stream"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_reads_gzip_traces(self, tracefile, tmp_path, capsys):
        import gzip
        import pathlib
        gz = tmp_path / "t.jsonl.gz"
        gz.write_bytes(gzip.compress(
            pathlib.Path(tracefile).read_bytes()))
        eager = self._eager_output(tracefile, capsys)
        assert main(["analyze", str(gz), "--stream"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_with_index_and_diagnose(self, tracefile, capsys):
        eager = self._eager_output(tracefile, capsys, "--index", "cv",
                                   "--diagnose")
        assert main(["analyze", tracefile, "--stream", "--index", "cv",
                     "--diagnose"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_with_drop_missing_ranks(self, tracefile, tmp_path,
                                            capsys):
        from repro.instrument import read_trace, write_trace
        events = [event for event in read_trace(tracefile)
                  if event.rank != 2]
        sparse = tmp_path / "sparse.jsonl"
        write_trace(sparse, events)
        assert main(["analyze", str(sparse), "--stream",
                     "--drop-missing-ranks"]) == 0
        out = capsys.readouterr().out
        assert "dropping rank(s) with no recorded events: 2" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "none.jsonl"),
                     "--stream"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unsupported_format_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "t.dat"
        bad.write_bytes(b"definitely not a trace")
        assert main(["analyze", str(bad), "--stream"]) == 2
        assert "no supported trace format" in capsys.readouterr().err

    def test_bad_chunk_size_exits_2(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--stream",
                     "--chunk-size", "0"]) == 2
        assert "--chunk-size" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--stream", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_timeline_is_incompatible(self, tracefile, capsys):
        assert main(["analyze", tracefile, "--stream", "--timeline"]) == 2
        assert "drop --stream" in capsys.readouterr().err

    def test_export_chrome_is_incompatible(self, tracefile, tmp_path,
                                           capsys):
        assert main(["analyze", tracefile, "--stream",
                     "--export-chrome", str(tmp_path / "t.json")]) == 2
        assert "drop --stream" in capsys.readouterr().err


class TestStreamSalvageFlags:
    """Damaged inputs through the streaming path: salvage by default,
    exit 2 under --strict — for plain, gzip and binary traces."""

    def _truncated_plain(self, tracefile, tmp_path):
        import pathlib
        lines = pathlib.Path(tracefile).read_text().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-1]) + "\n")
        return str(cut)

    def _truncated_gzip(self, tracefile, tmp_path):
        import gzip
        import pathlib
        data = gzip.compress(pathlib.Path(tracefile).read_bytes())
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(data[:len(data) - 30])
        return str(cut)

    def _truncated_binary(self, tracefile, tmp_path):
        from repro.instrument import read_trace, write_binary_trace
        cut = tmp_path / "cut.rptb"
        write_binary_trace(cut, read_trace(tracefile))
        cut.write_bytes(cut.read_bytes()[:-20])
        return str(cut)

    @pytest.mark.parametrize("make", ["_truncated_plain",
                                      "_truncated_gzip",
                                      "_truncated_binary"])
    def test_stream_salvages_by_default(self, tracefile, tmp_path, capsys,
                                        make):
        from repro.errors import TraceWarning
        cut = getattr(self, make)(tracefile, tmp_path)
        with pytest.warns(TraceWarning):
            assert main(["analyze", cut, "--stream"]) == 0
        assert "Top-down analysis summary" in capsys.readouterr().out

    @pytest.mark.parametrize("make", ["_truncated_plain",
                                      "_truncated_gzip",
                                      "_truncated_binary"])
    def test_stream_strict_refuses_damage(self, tracefile, tmp_path,
                                          capsys, make):
        cut = getattr(self, make)(tracefile, tmp_path)
        assert main(["analyze", cut, "--stream", "--strict"]) == 2
        assert "error" in capsys.readouterr().err

    def test_strict_sharded_jobs_also_refuse(self, tracefile, tmp_path,
                                             capsys):
        cut = self._truncated_plain(tracefile, tmp_path)
        assert main(["analyze", cut, "--stream", "--strict",
                     "--jobs", "2"]) == 2
        assert "error" in capsys.readouterr().err


class TestTemporalStreamFlag:
    def test_stream_output_is_byte_identical(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--windows", "5"]) == 0
        eager = capsys.readouterr().out
        assert main(["temporal", tracefile, "--windows", "5",
                     "--stream"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_with_phases_and_small_chunks(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--windows", "6",
                     "--phases"]) == 0
        eager = capsys.readouterr().out
        assert main(["temporal", tracefile, "--windows", "6", "--phases",
                     "--stream", "--chunk-size", "13"]) == 0
        assert capsys.readouterr().out == eager

    def test_stream_is_incompatible_with_sweep(self, tracefile, capsys):
        import os
        assert main(["temporal", "--sweep", os.path.dirname(tracefile),
                     "--stream"]) == 2
        assert "--sweep already streams" in capsys.readouterr().err

    def test_bad_chunk_size_exits_2(self, tracefile, capsys):
        assert main(["temporal", tracefile, "--stream",
                     "--chunk-size", "-3"]) == 2
        assert "--chunk-size" in capsys.readouterr().err


class TestServeVerbs:
    """Upfront validation for the service verbs: expected failures exit
    2 with a one-line error, never a bare traceback."""

    def test_serve_rejects_bad_workers(self, tmp_path, capsys):
        assert main(["serve", "--workers", "0",
                     "--store", str(tmp_path / "s")]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_rejects_bad_port(self, tmp_path, capsys):
        assert main(["serve", "--port", "70000",
                     "--store", str(tmp_path / "s")]) == 2
        assert "--port" in capsys.readouterr().err

    def test_submit_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["submit", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_submit_unreachable_service_exits_2(self, tracefile, capsys):
        assert main(["submit", tracefile, "--retries", "0",
                     "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach analysis service" in capsys.readouterr().err

    def test_fetch_rejects_non_trace_non_sha_argument(self, tmp_path,
                                                      capsys):
        assert main(["fetch", "not-a-file-nor-a-sha"]) == 2
        err = capsys.readouterr().err
        assert "neither a readable trace file" in err

    def test_fetch_rejects_bad_windows(self, tracefile, capsys):
        assert main(["fetch", tracefile, "--kind", "temporal",
                     "--windows", "0"]) == 2
        assert "--windows" in capsys.readouterr().err

    def test_fetch_unreachable_service_exits_2(self, tracefile, capsys):
        assert main(["fetch", tracefile, "--retries", "0",
                     "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach analysis service" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--max-body-bytes", "--max-queue",
                                      "--max-cache-bytes",
                                      "--max-store-bytes"])
    def test_serve_rejects_nonpositive_caps(self, tmp_path, capsys, flag):
        assert main(["serve", flag, "0",
                     "--store", str(tmp_path / "s")]) == 2
        assert flag in capsys.readouterr().err

    def test_serve_rejects_bad_request_timeout(self, tmp_path, capsys):
        assert main(["serve", "--request-timeout", "0",
                     "--store", str(tmp_path / "s")]) == 2
        assert "--request-timeout" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["submit", "fetch"])
    def test_negative_retries_exit_2(self, tracefile, capsys, verb):
        assert main([verb, tracefile, "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["submit", "fetch"])
    def test_negative_retry_max_wait_exits_2(self, tracefile, capsys,
                                             verb):
        assert main([verb, tracefile, "--retry-max-wait", "-1"]) == 2
        assert "--retry-max-wait" in capsys.readouterr().err

    def test_capped_daemon_round_trip(self, tracefile, tmp_path, capsys):
        """The production-limit flags wire through: a daemon with every
        cap set still serves the byte-identical report."""
        from repro.serve import AnalysisServer
        with AnalysisServer(tmp_path / "store", port=0,
                            max_body_bytes=1 << 20,
                            max_queue=4,
                            max_cache_bytes=1 << 20,
                            max_store_bytes=1 << 20,
                            request_timeout=30.0) as daemon:
            assert main(["analyze", tracefile]) == 0
            expected = capsys.readouterr().out
            assert main(["fetch", tracefile, "--url", daemon.url]) == 0
            assert capsys.readouterr().out == expected

    def test_round_trip_through_a_live_daemon(self, tracefile, tmp_path,
                                              capsys):
        from repro.serve import AnalysisServer
        with AnalysisServer(tmp_path / "store", port=0) as daemon:
            assert main(["submit", tracefile, "--url", daemon.url]) == 0
            out = capsys.readouterr().out
            assert "stored" in out and "4 ranks" in out
            assert main(["submit", tracefile, "--url", daemon.url]) == 0
            assert "already stored" in capsys.readouterr().out
            assert main(["analyze", tracefile]) == 0
            expected = capsys.readouterr().out
            assert main(["fetch", tracefile, "--url", daemon.url]) == 0
            assert capsys.readouterr().out == expected

    def test_fetch_json_payload(self, tracefile, tmp_path, capsys):
        import json
        from repro.serve import AnalysisServer
        with AnalysisServer(tmp_path / "store", port=0) as daemon:
            assert main(["fetch", tracefile, "--url", daemon.url,
                         "--json"]) == 0
            report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-report/1"
        assert report["program"]["n_processors"] == 4
