"""Differential tests: the vectorized batch engine vs the scalar path.

For a spread of tensors — randomized, with not-performed (all-zero)
rows, single-processor, degenerate all-equal — every index the batch
engine produces must agree with the scalar ``dispersion.get_index``
result within 1e-12, for every index in ``available_indices()``.  The
scalar per-cell loop survives as
:func:`repro.core.batch.scalar_dispersion_matrix` exactly so this suite
can keep holding the two implementations against each other.
"""

import numpy as np
import pytest

from repro.core import (AnalysisSession, BatchAnalysis, MeasurementSet,
                        analyze, available_batch_kernels, available_indices,
                        batch_dispersion_matrix, dispersion_matrix,
                        get_batch_kernel, imbalance_time,
                        register_batch_kernel, register_index,
                        scalar_dispersion_matrix)
from repro.core.batch import imbalance_time_kernel
from repro.errors import DispersionError


def random_tensor(seed: int, n: int, k: int, p: int,
                  zero_rows: float = 0.3) -> np.ndarray:
    """A non-negative tensor with a share of all-zero (dash) cells."""
    rng = np.random.default_rng(seed)
    tensor = rng.uniform(0.0, 10.0, (n, k, p))
    dashes = rng.uniform(size=(n, k)) < zero_rows
    # Keep at least one performed cell so the set is non-degenerate.
    dashes[0, 0] = False
    tensor[dashes] = 0.0
    return tensor


CASES = [
    MeasurementSet(random_tensor(0, 5, 4, 8)),
    MeasurementSet(random_tensor(1, 3, 2, 16, zero_rows=0.5)),
    MeasurementSet(random_tensor(2, 1, 1, 2, zero_rows=0.0)),
    # Single processor: every performed slice standardizes to [1.0].
    MeasurementSet(random_tensor(3, 4, 3, 1)),
    # Degenerate: all processors exactly equal in every cell.
    MeasurementSet(np.full((3, 2, 6), 2.5)),
    # Sparse extremes: one processor carries everything.
    MeasurementSet(np.pad(np.ones((2, 2, 1)), ((0, 0), (0, 0), (0, 7)))),
]


def assert_matches_scalar(measurements, index):
    batch = BatchAnalysis(measurements).matrix(index)
    scalar = scalar_dispersion_matrix(measurements, index)
    np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12,
                               err_msg=f"index {index!r} diverged")
    # nan placement (dash cells) must be identical, not just close.
    np.testing.assert_array_equal(np.isnan(batch), np.isnan(scalar))


@pytest.mark.parametrize("case", range(len(CASES)))
@pytest.mark.parametrize("index", available_indices())
def test_every_index_matches_scalar(case, index):
    assert_matches_scalar(CASES[case], index)


@pytest.mark.parametrize("index", available_indices())
def test_paper_dataset_matches_scalar(paper_measurements, index):
    assert_matches_scalar(paper_measurements, index)


@pytest.mark.parametrize("index", available_indices())
def test_tiny_fixture_matches_scalar(tiny_measurements, index):
    assert_matches_scalar(tiny_measurements, index)


def test_every_registered_index_has_a_kernel():
    """The built-in registries stay in lockstep; custom scalar indices
    without a kernel fall back to the loop (tested below)."""
    assert set(available_indices()) <= set(available_batch_kernels())


def test_dispersion_matrix_is_batch_backed(tiny_measurements):
    np.testing.assert_array_equal(
        np.nan_to_num(dispersion_matrix(tiny_measurements)),
        np.nan_to_num(batch_dispersion_matrix(tiny_measurements)))


def test_imbalance_time_kernel_matches_scalar():
    ms = CASES[0]
    matrix = BatchAnalysis(ms).imbalance_time_matrix()
    performed = ms.performed
    for i in range(ms.n_regions):
        for j in range(ms.n_activities):
            if performed[i, j]:
                expected = imbalance_time(ms.times[i, j, :])
                assert matrix[i, j] == pytest.approx(expected, abs=1e-12)
            else:
                assert np.isnan(matrix[i, j])
    raw = ms.times[performed]
    np.testing.assert_allclose(imbalance_time_kernel(raw),
                               matrix[performed], rtol=1e-12)


def test_processor_view_matches_scalar_loop():
    """The vectorized processor view equals the per-region masked loop."""
    from repro.core import standardize_over_activities
    for ms in CASES:
        standardized = standardize_over_activities(ms)
        performed = ms.performed
        expected = np.zeros((ms.n_regions, ms.n_processors))
        for i in range(ms.n_regions):
            active = performed[i, :]
            if not np.any(active):
                continue
            profiles = standardized[i, active, :]
            deviations = profiles - profiles.mean(axis=1, keepdims=True)
            expected[i, :] = np.sqrt((deviations ** 2).sum(axis=0))
        actual = BatchAnalysis(ms).processor_dispersion()
        np.testing.assert_allclose(actual, expected, rtol=1e-12, atol=1e-12)


def test_custom_scalar_index_falls_back_to_loop(tiny_measurements):
    """An index registered without a batch kernel still works through
    BatchAnalysis (served by the scalar loop)."""
    name = "midhinge-test-only"
    from repro.core import dispersion as disp
    register_index(name)(
        lambda values: float(np.asarray(values, dtype=float).max() * 0.5))
    try:
        assert name not in available_batch_kernels()
        assert_matches_scalar(tiny_measurements, name)
    finally:
        del disp._REGISTRY[name]


def test_custom_batch_kernel_registration(tiny_measurements):
    name = "halfmax-test-only"
    from repro.core import dispersion as disp
    from repro.core import batch as batch_module
    register_index(name)(
        lambda values: float(np.asarray(values, dtype=float).max() * 0.5))
    register_batch_kernel(name)(lambda matrix: matrix.max(axis=1) * 0.5)
    try:
        assert_matches_scalar(tiny_measurements, name)
        kernel = get_batch_kernel(name)
        np.testing.assert_allclose(kernel(np.array([[1.0, 3.0]])), [1.5])
    finally:
        del disp._REGISTRY[name]
        del batch_module._BATCH_REGISTRY[name]


class TestDashCellParity:
    """Scalar and batch paths treat all-zero data sets identically."""

    def test_batch_kernels_reject_dash_rows(self):
        matrix = np.array([[1.0, 2.0], [0.0, 0.0]])
        for name in available_batch_kernels():
            with pytest.raises(DispersionError):
                get_batch_kernel(name)(matrix)

    def test_matrix_paths_skip_dash_cells(self):
        ms = CASES[1]
        performed = ms.performed
        assert not performed.all()          # the case really has dashes
        for name in available_indices():
            batch = BatchAnalysis(ms).matrix(name)
            scalar = scalar_dispersion_matrix(ms, name)
            assert np.isnan(batch[~performed]).all()
            assert np.isnan(scalar[~performed]).all()


class TestSessionMemoization:
    def test_dispersion_matrix_cached(self, tiny_measurements):
        session = AnalysisSession(tiny_measurements)
        assert session.dispersion_matrix() is session.dispersion_matrix()

    def test_views_cached(self, tiny_measurements):
        session = AnalysisSession(tiny_measurements)
        assert session.views() is session.views()
        assert session.views() is not session.views(weighting="uniform")

    def test_analysis_cached_and_matches_direct(self, tiny_measurements):
        session = AnalysisSession(tiny_measurements)
        result = session.analyze()
        assert result is session.analyze()
        direct = analyze(tiny_measurements)
        np.testing.assert_allclose(
            np.nan_to_num(result.activity_view.dispersion),
            np.nan_to_num(direct.activity_view.dispersion))
        assert result.region_ranking.names == direct.region_ranking.names

    def test_ranking_cached(self, tiny_measurements):
        session = AnalysisSession(tiny_measurements)
        first = session.ranking(kind="region")
        assert first is session.ranking(kind="region")
        assert first.names[0] in tiny_measurements.regions
        activities = session.ranking(kind="activity")
        assert activities.names[0] in tiny_measurements.activities

    def test_efficiency_cached_and_matches_direct(self, tiny_measurements):
        from repro.core import efficiency
        session = AnalysisSession(tiny_measurements)
        cached = session.efficiency(useful_activity="X")
        assert cached is session.efficiency(useful_activity="X")
        direct = efficiency(tiny_measurements, useful_activity="X")
        assert cached.load_balance == pytest.approx(direct.load_balance)
        assert cached.parallel_efficiency == pytest.approx(
            direct.parallel_efficiency)

    def test_report_and_diagnosis_cached(self, tiny_measurements):
        session = AnalysisSession(tiny_measurements)
        assert session.report() is session.report()
        assert session.diagnosis() is session.diagnosis()

    def test_render_full_report_accepts_session(self, tiny_measurements):
        from repro.core import render_full_report
        session = AnalysisSession(tiny_measurements)
        assert render_full_report(session) == render_full_report(
            session.analyze())
