"""Unit tests for the ranking criteria."""

import pytest

from repro.core import (agreement, kendall_distance, rank, rank_by_maximum,
                        rank_by_percentile, rank_by_threshold)
from repro.errors import RankingError

VALUES = {"a": 0.5, "b": 0.1, "c": 0.9, "d": 0.3}


class TestMaximum:
    def test_selects_top(self):
        result = rank_by_maximum(VALUES)
        assert result.names == ("c",)

    def test_selects_top_k(self):
        result = rank_by_maximum(VALUES, count=2)
        assert result.names == ("c", "a")

    def test_ordered_covers_all(self):
        result = rank_by_maximum(VALUES)
        assert [item.name for item in result.ordered] == ["c", "a", "d", "b"]

    def test_count_larger_than_items(self):
        result = rank_by_maximum(VALUES, count=10)
        assert len(result) == 4

    def test_rejects_zero_count(self):
        with pytest.raises(RankingError):
            rank_by_maximum(VALUES, count=0)

    def test_ties_break_by_name(self):
        result = rank_by_maximum({"b": 1.0, "a": 1.0}, count=2)
        assert result.names == ("a", "b")

    def test_nan_values_ignored(self):
        result = rank_by_maximum({"a": float("nan"), "b": 1.0})
        assert result.names == ("b",)

    def test_all_nan_rejected(self):
        with pytest.raises(RankingError):
            rank_by_maximum({"a": float("nan")})


class TestPercentile:
    def test_median_selection(self):
        result = rank_by_percentile(VALUES, percentile=50.0)
        assert set(result.names) == {"c", "a"}

    def test_high_percentile(self):
        result = rank_by_percentile(VALUES, percentile=90.0)
        assert result.names == ("c",)

    def test_rejects_out_of_range(self):
        with pytest.raises(RankingError):
            rank_by_percentile(VALUES, percentile=100.0)
        with pytest.raises(RankingError):
            rank_by_percentile(VALUES, percentile=0.0)


class TestThreshold:
    def test_selection(self):
        result = rank_by_threshold(VALUES, threshold=0.4)
        assert result.names == ("c", "a")

    def test_strict_inequality(self):
        result = rank_by_threshold(VALUES, threshold=0.9)
        assert result.names == ()

    def test_rejects_nan_threshold(self):
        with pytest.raises(RankingError):
            rank_by_threshold(VALUES, threshold=float("nan"))


class TestDispatch:
    def test_maximum(self):
        assert rank(VALUES, "maximum").criterion == "maximum"

    def test_percentile(self):
        result = rank(VALUES, "percentile", percentile=75.0)
        assert result.criterion == "percentile(75)"

    def test_threshold(self):
        result = rank(VALUES, "threshold", threshold=0.2)
        assert result.criterion == "threshold(0.2)"

    def test_unknown_rejected(self):
        with pytest.raises(RankingError):
            rank(VALUES, "magic")


class TestComparisons:
    def test_agreement_identical(self):
        first = rank_by_maximum(VALUES, count=2)
        second = rank_by_maximum(VALUES, count=2)
        assert agreement(first, second) == 1.0

    def test_agreement_partial(self):
        first = rank_by_maximum(VALUES, count=2)          # c, a
        second = rank_by_threshold(VALUES, threshold=0.05)  # all four
        assert agreement(first, second) == pytest.approx(0.5)

    def test_agreement_empty_selections(self):
        first = rank_by_threshold(VALUES, threshold=1.0)
        second = rank_by_threshold(VALUES, threshold=2.0)
        assert agreement(first, second) == 1.0

    def test_kendall_identity(self):
        assert kendall_distance(["a", "b", "c"], ["a", "b", "c"]) == 0

    def test_kendall_reversal(self):
        assert kendall_distance(["a", "b", "c"], ["c", "b", "a"]) == 3

    def test_kendall_single_swap(self):
        assert kendall_distance(["a", "b", "c"], ["b", "a", "c"]) == 1

    def test_kendall_requires_same_items(self):
        with pytest.raises(RankingError):
            kendall_distance(["a"], ["b"])
