"""Tests for the N-body workload: dynamic imbalance and its repair."""

import numpy as np
import pytest

from repro.apps import NBODY_REGIONS, NBodyConfig, run_nbody
from repro.apps.nbody import _drift_counts
from repro.core import temporal_analysis
from repro.errors import WorkloadError
from repro.instrument import window_profiles


class TestConfig:
    def test_defaults_valid(self):
        NBodyConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(WorkloadError):
            NBodyConfig(particles_per_rank=0)
        with pytest.raises(WorkloadError):
            NBodyConfig(drift_fraction=1.0)
        with pytest.raises(WorkloadError):
            NBodyConfig(rebalance_every=-1)


class TestDriftCounts:
    def test_conserves_particles(self):
        counts = [100, 100, 100, 100]
        transfers = _drift_counts(counts, attractor=0, fraction=0.1)
        outgoing = [sum(row) for row in transfers]
        incoming = [sum(transfers[s][t] for s in range(4))
                    for t in range(4)]
        new = [counts[r] - outgoing[r] + incoming[r] for r in range(4)]
        assert sum(new) == sum(counts)

    def test_attractor_keeps_everything(self):
        transfers = _drift_counts([100] * 4, attractor=2, fraction=0.2)
        assert sum(transfers[2]) == 0

    def test_flows_toward_attractor(self):
        transfers = _drift_counts([100] * 5, attractor=0, fraction=0.1)
        # Rank 1 sends backward to 0; rank 4 wraps forward to 0.
        assert transfers[1][0] == 10
        assert transfers[4][0] == 10
        # Rank 2 heads toward 0 via rank 1.
        assert transfers[2][1] == 10


class TestRunNBody:
    @pytest.fixture(scope="class")
    def drifting(self):
        return run_nbody(NBodyConfig(steps=8), n_ranks=8)

    def test_regions(self, drifting):
        _, _, measurements = drifting
        assert measurements.regions == NBODY_REGIONS

    def test_rebalance_region_empty_when_disabled(self, drifting):
        _, _, measurements = drifting
        i = measurements.region_index("rebalance")
        assert measurements.times[i].sum() == 0.0

    def test_rebalance_region_active_when_enabled(self):
        _, _, measurements = run_nbody(
            NBodyConfig(steps=6, rebalance_every=2), n_ranks=8)
        i = measurements.region_index("rebalance")
        assert measurements.times[i].sum() > 0.0

    def test_attractor_accumulates_work(self, drifting):
        _, _, measurements = drifting
        forces = measurements.region_index("forces")
        comp = measurements.activity_index("computation")
        times = measurements.times[forces, comp, :]
        assert int(np.argmax(times)) == 0        # the attractor rank

    def test_imbalance_drifts_upward(self, drifting):
        _, tracer, _ = drifting
        windows = window_profiles(tracer, 4,
                                  regions=("forces",))
        analysis = temporal_analysis(windows)
        trend = analysis.trend("forces")
        assert trend.slope > 0.0
        assert trend.series[-1] > trend.series[0]

    def test_rebalancing_caps_the_drift(self):
        config = NBodyConfig(steps=8)
        repaired = NBodyConfig(steps=8, rebalance_every=2)
        _, tracer_a, _ = run_nbody(config, n_ranks=8)
        _, tracer_b, _ = run_nbody(repaired, n_ranks=8)
        slope_a = temporal_analysis(
            window_profiles(tracer_a, 4, regions=("forces",))
        ).trend("forces").slope
        slope_b = temporal_analysis(
            window_profiles(tracer_b, 4, regions=("forces",))
        ).trend("forces").slope
        assert slope_b < slope_a

    def test_rebalancing_speeds_up_the_run(self):
        plain = run_nbody(NBodyConfig(steps=10), n_ranks=8)[0]
        repaired = run_nbody(NBodyConfig(steps=10, rebalance_every=3),
                             n_ranks=8)[0]
        assert repaired.elapsed < plain.elapsed

    def test_deterministic(self):
        first = run_nbody(NBodyConfig(steps=4), n_ranks=4)
        second = run_nbody(NBodyConfig(steps=4), n_ranks=4)
        np.testing.assert_array_equal(first[2].times, second[2].times)
