"""Tests for the wavefront (pipeline) workload."""

import numpy as np
import pytest

from repro.apps import PIPELINE_REGIONS, PipelineConfig, run_pipeline
from repro.core import analyze, dispersion_matrix
from repro.errors import WorkloadError


class TestConfig:
    def test_defaults_valid(self):
        PipelineConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(WorkloadError):
            PipelineConfig(sweeps=0)
        with pytest.raises(WorkloadError):
            PipelineConfig(block_compute=0.0)
        with pytest.raises(WorkloadError):
            PipelineConfig(block_bytes=-1)


class TestPipelineBehaviour:
    @pytest.fixture(scope="class")
    def run(self):
        return run_pipeline(PipelineConfig(sweeps=2, blocks=3), n_ranks=8)

    def test_regions(self, run):
        _, _, measurements = run
        assert measurements.regions == PIPELINE_REGIONS

    def test_computation_is_balanced(self, run):
        """Every rank does identical work — the imbalance is *not*
        computational."""
        _, _, measurements = run
        matrix = dispersion_matrix(measurements)
        comp = measurements.activity_index("computation")
        assert np.nanmax(matrix[:, comp]) < 1e-9

    def test_dependencies_show_as_p2p_dispersion(self, run):
        """The pipeline fill/drain idling lands in point-to-point time
        with substantial dispersion."""
        _, _, measurements = run
        matrix = dispersion_matrix(measurements)
        p2p = measurements.activity_index("point-to-point")
        assert np.nanmax(matrix[:2, p2p]) > 0.05

    def test_sweep_direction_mirrors_waiters(self, run):
        """Forward sweep: downstream ranks wait (rank P-1 waits most for
        its first block); backward sweep mirrors it."""
        _, _, measurements = run
        p2p = measurements.activity_index("point-to-point")
        forward = measurements.times[0, p2p, :]
        backward = measurements.times[1, p2p, :]
        # The last rank spends more p2p time than the first in the
        # forward sweep; reversed in the backward sweep.
        assert forward[-1] > forward[0]
        assert backward[0] > backward[-1]

    def test_elapsed_reflects_pipeline_depth(self):
        """Wall clock grows roughly linearly with rank count (fill
        latency), unlike an embarrassingly parallel region."""
        shallow = run_pipeline(PipelineConfig(sweeps=1, blocks=2),
                               n_ranks=4)[0]
        deep = run_pipeline(PipelineConfig(sweeps=1, blocks=2),
                            n_ranks=16)[0]
        assert deep.elapsed > shallow.elapsed * 2

    def test_methodology_distinguishes_dependency_imbalance(self, run):
        """The analysis flags p2p (not computation) as the imbalanced
        activity — the signature separating dependencies from uneven
        work distributions."""
        _, _, measurements = run
        analysis = analyze(measurements, cluster_count=None)
        ranking = analysis.activity_view.ranking()
        # Waiting (p2p along the chain, or the drain skew absorbed by
        # the norm's collective) dominates; computation is dead last.
        assert ranking[-1] == "computation"
        assert "point-to-point" in ranking[:2]

    def test_deterministic(self):
        first = run_pipeline(n_ranks=6)
        second = run_pipeline(n_ranks=6)
        np.testing.assert_array_equal(first[2].times, second[2].times)
