"""Tests for trace filters/merging and the share heatmap."""

import numpy as np
import pytest

from repro.core import MeasurementSet
from repro.errors import MeasurementError, TraceError
from repro.instrument import (Tracer, TraceEvent, filter_activities,
                              filter_events, filter_ranks, filter_regions,
                              filter_time, merge, profile, relabel_region,
                              shift_time)
from repro.viz import render_heatmap


def make_tracer():
    tracer = Tracer()
    tracer.record(0, "a", "computation", 0.0, 1.0)
    tracer.record(0, "b", "point-to-point", 1.0, 2.0, kind="send",
                  nbytes=10, partner=1)
    tracer.record(1, "a", "computation", 0.0, 1.5)
    tracer.record(1, "b", "collective", 1.5, 2.5, kind="recv")
    return tracer


class TestFilters:
    def test_filter_events_predicate(self):
        result = filter_events(make_tracer(),
                               lambda event: event.duration > 1.0)
        assert len(result) == 1
        assert result.events[0].rank == 1

    def test_filter_regions(self):
        result = filter_regions(make_tracer(), ["a"])
        assert result.regions() == ("a",)
        assert len(result) == 2

    def test_filter_activities(self):
        result = filter_activities(make_tracer(), ["computation"])
        assert result.activities() == ("computation",)

    def test_filter_ranks(self):
        result = filter_ranks(make_tracer(), [1])
        assert all(event.rank == 1 for event in result.events)

    def test_filter_time_clips(self):
        result = filter_time(make_tracer(), 0.5, 1.25)
        durations = sorted(round(event.duration, 6)
                           for event in result.events)
        # rank0 'a' clipped to [0.5,1.0], 'b' to [1.0,1.25];
        # rank1 'a' clipped to [0.5,1.25].
        assert durations == [0.25, 0.5, 0.75]

    def test_filter_time_no_clip_keeps_whole_events(self):
        result = filter_time(make_tracer(), 0.5, 1.25, clip=False)
        assert any(event.duration == 1.5 for event in result.events)

    def test_filter_time_validation(self):
        with pytest.raises(TraceError):
            filter_time(make_tracer(), 1.0, 1.0)

    def test_shift_time(self):
        result = shift_time(make_tracer(), 10.0)
        assert min(event.begin for event in result.events) == 10.0
        with pytest.raises(TraceError):
            shift_time(make_tracer(), -1.0)

    def test_relabel_region(self):
        result = relabel_region(make_tracer(), "a", "alpha")
        assert "alpha" in result.regions()
        assert "a" not in result.regions()

    def test_inputs_not_mutated(self):
        tracer = make_tracer()
        filter_regions(tracer, ["a"])
        assert len(tracer) == 4


class TestMerge:
    def test_plain_merge(self):
        merged = merge([make_tracer(), make_tracer()])
        assert len(merged) == 8
        assert merged.n_ranks == 2

    def test_merge_with_rank_offsets(self):
        merged = merge([make_tracer(), make_tracer()],
                       rank_offsets=[0, 2])
        assert merged.n_ranks == 4
        # Partner ids are shifted too.
        shifted = [event for event in merged.events
                   if event.rank == 2 and event.partner >= 0]
        assert shifted and shifted[0].partner == 3

    def test_merged_profile_consistent(self):
        merged = merge([make_tracer(), make_tracer()],
                       rank_offsets=[0, 2])
        measurements = profile(merged)
        single = profile(make_tracer())
        i = measurements.region_index("a")
        j = measurements.activity_index("computation")
        np.testing.assert_allclose(
            measurements.times[i, j, :2], single.times[
                single.region_index("a"),
                single.activity_index("computation"), :])

    def test_offset_count_checked(self):
        with pytest.raises(TraceError):
            merge([make_tracer()], rank_offsets=[0, 1])

    def test_negative_offset_rejected(self):
        with pytest.raises(TraceError):
            merge([make_tracer()], rank_offsets=[-1])


class TestHeatmap:
    @pytest.fixture()
    def measurements(self):
        times = np.zeros((2, 2, 4))
        times[0, 0] = [1.0, 1.0, 1.0, 1.0]       # balanced
        times[1, 0] = [4.0, 0.1, 1.0, 1.0]       # hot rank 0, cold rank 1
        return MeasurementSet(times, regions=("even", "skew"),
                              activities=("computation", "p2p"))

    def test_balanced_row_is_colons(self, measurements):
        text = render_heatmap(measurements)
        row = [line for line in text.splitlines()
               if line.startswith("even")][0]
        assert "|::::|" in row

    def test_hot_and_cold_shades(self, measurements):
        text = render_heatmap(measurements)
        row = [line for line in text.splitlines()
               if line.startswith("skew")][0]
        cells = row.split("|")[1]
        assert cells[0] == "#"        # 4/6.1 vs 0.25 -> >150%
        assert cells[1] == " "        # far below 50%

    def test_activity_selection(self, measurements):
        text = render_heatmap(measurements, activity="computation")
        assert "computation" in text

    def test_empty_slice_rejected(self, measurements):
        with pytest.raises(MeasurementError):
            render_heatmap(measurements, activity="p2p")

    def test_paper_heatmap_shows_loop6_boundary(self, paper_measurements):
        text = render_heatmap(paper_measurements)
        loop6 = [line for line in text.splitlines()
                 if line.startswith("loop 6")][0]
        # The four hot boundary ranks stand out.
        assert loop6.count("*") + loop6.count("#") >= 4
