"""Tests for the master-worker scheduling workload."""

import numpy as np
import pytest

from repro.apps import (TaskFarm, run_master_worker, worker_imbalance)
from repro.errors import WorkloadError


class TestTaskFarm:
    def test_costs_are_a_ramp(self):
        costs = TaskFarm(tasks=100, base_cost=1e-3,
                         irregularity=3.0).costs()
        assert costs[0] == pytest.approx(1e-3)
        assert costs[-1] == pytest.approx(4e-3)
        assert np.all(np.diff(costs) >= 0.0)

    def test_single_task(self):
        assert TaskFarm(tasks=1).costs().shape == (1,)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TaskFarm(tasks=0)
        with pytest.raises(WorkloadError):
            TaskFarm(chunk=0)
        with pytest.raises(WorkloadError):
            TaskFarm(base_cost=0.0)


class TestPolicies:
    @pytest.fixture(scope="class")
    def farm(self):
        return TaskFarm(tasks=192, chunk=4)

    @pytest.fixture(scope="class")
    def static_run(self, farm):
        return run_master_worker(farm, 8, "static")

    @pytest.fixture(scope="class")
    def dynamic_run(self, farm):
        return run_master_worker(farm, 8, "dynamic")

    def test_total_work_identical(self, farm, static_run, dynamic_run):
        """Both policies execute exactly the same task costs."""
        comp = static_run[2].activity_index("computation")
        work = static_run[2].region_index("work")
        static_total = static_run[2].times[work, comp, :].sum()
        dynamic_total = dynamic_run[2].times[work, comp, :].sum()
        assert static_total == pytest.approx(dynamic_total, rel=1e-9)
        assert static_total == pytest.approx(farm.costs().sum(), rel=1e-9)

    def test_dynamic_balances_the_workers(self, static_run, dynamic_run):
        static_id = worker_imbalance(static_run[2])
        dynamic_id = worker_imbalance(dynamic_run[2])
        assert dynamic_id < static_id / 2

    def test_dynamic_is_faster_despite_messages(self, static_run,
                                                dynamic_run):
        assert dynamic_run[0].elapsed < static_run[0].elapsed
        assert dynamic_run[0].messages > static_run[0].messages

    def test_master_computes_nothing(self, dynamic_run):
        measurements = dynamic_run[2]
        comp = measurements.activity_index("computation")
        work = measurements.region_index("work")
        assert measurements.times[work, comp, 0] == 0.0

    def test_static_barrier_absorbs_imbalance(self, static_run):
        """The finalize barrier waits reflect the uneven work."""
        measurements = static_run[2]
        sync = measurements.activity_index("synchronization")
        finalize = measurements.region_index("finalize")
        waits = measurements.times[finalize, sync, :]
        assert waits.max() > waits.min()

    def test_smaller_chunks_balance_better(self, farm):
        fine = run_master_worker(TaskFarm(tasks=192, chunk=1), 8,
                                 "dynamic")
        coarse = run_master_worker(TaskFarm(tasks=192, chunk=48), 8,
                                   "dynamic")
        assert worker_imbalance(fine[2]) < worker_imbalance(coarse[2])

    def test_deterministic(self, farm):
        first = run_master_worker(farm, 6, "dynamic")
        second = run_master_worker(farm, 6, "dynamic")
        np.testing.assert_array_equal(first[2].times, second[2].times)

    def test_policy_validation(self, farm):
        with pytest.raises(WorkloadError):
            run_master_worker(farm, 8, "round-robin")

    def test_needs_two_ranks(self, farm):
        from repro.errors import SimulationError
        with pytest.raises((WorkloadError, SimulationError)):
            run_master_worker(farm, 1, "dynamic")

    def test_methodology_sees_the_difference(self, static_run,
                                             dynamic_run):
        """End to end: the work region's computation dispersion drops
        under dynamic scheduling.  (The region's *overall* index stays
        high in the dynamic run — the methodology honestly reports the
        master's request/assign waiting as point-to-point imbalance.)"""
        from repro.core import dispersion_matrix
        static_matrix = dispersion_matrix(static_run[2])
        dynamic_matrix = dispersion_matrix(dynamic_run[2])
        comp = static_run[2].activity_index("computation")
        work_static = static_run[2].region_index("work")
        work_dynamic = dynamic_run[2].region_index("work")
        assert dynamic_matrix[work_dynamic, comp] < \
            static_matrix[work_static, comp]
