"""Tests for the analysis service daemon (repro.serve).

The load-bearing guarantees:

* a report fetched from the daemon is **byte-identical** to the
  corresponding CLI command's stdout for the same trace and parameters
  (golden test on the synthesized paper trace, all four job kinds);
* the trace store is content-addressed and idempotent, validating
  ingests with the salvage-tolerant readers;
* concurrent requests for the same report trigger **one** computation
  (single-flight), and a daemon restarted over the same store serves
  yesterday's reports from the shared cache without recomputing;
* shutdown drains in-flight jobs (their results land in the cache) and
  a SIGTERM'd ``repro serve`` process exits cleanly without dropping a
  submitted trace.
"""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cache import ReportCache
from repro.cli import main
from repro.errors import ReproError, TraceError
from repro.serve import (AnalysisServer, JobRunner, ServeClient,
                         ServiceMetrics, TraceStore, normalize_params,
                         trace_sha256)

GOLDEN = Path(__file__).resolve().parent.parent / "docs" / "paper_report.txt"


@pytest.fixture(scope="module")
def paper_trace(tmp_path_factory):
    """The synthesized paper trace (profile == the paper's dataset)."""
    from repro.calibrate import synthesize_paper_trace
    path = tmp_path_factory.mktemp("paper") / "paper.jsonl"
    synthesize_paper_trace(path)
    return str(path)


@pytest.fixture()
def server(tmp_path):
    with AnalysisServer(tmp_path / "store", port=0, workers=2) as daemon:
        yield daemon


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def cli_stdout(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(argv) == 0
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Byte-identity: the acceptance bar
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("kind,argv,params", [
        ("analyze", ["analyze", "{t}"], {}),
        ("diagnose", ["analyze", "{t}", "--diagnose"], {}),
        ("whatif", ["analyze", "{t}", "--whatif"], {}),
        ("temporal", ["temporal", "{t}", "--windows", "8"],
         {"windows": 8}),
    ])
    def test_served_report_matches_cli_stdout(self, client, paper_trace,
                                              kind, argv, params):
        sha = client.submit(paper_trace)["sha256"]
        payload = client.report(sha, kind, **params)
        expected = cli_stdout([part.format(t=paper_trace)
                               for part in argv])
        assert payload["text"] == expected
        assert payload["status"] == "ok"
        assert not payload["cached"]
        # Second fetch: served from the on-disk cache, same bytes.
        again = client.report(sha, kind, **params)
        assert again["cached"]
        assert again["text"] == expected

    def test_analyze_serves_the_golden_bytes(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        assert client.fetch_text(sha) == GOLDEN.read_text()

    def test_fetch_cli_verb_is_byte_identical(self, server, paper_trace,
                                              capsys):
        assert main(["fetch", paper_trace, "--url", server.url]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_structured_report_rides_along(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        report = client.report(sha, "analyze")["report"]
        assert report["schema"] == "repro-report/1"
        assert report["program"]["n_processors"] == 16
        assert set(report["dispersion"]) \
            == set(report["program"]["regions"])


# ----------------------------------------------------------------------
# The content-addressed store
# ----------------------------------------------------------------------
class TestTraceStore:
    def test_submit_is_idempotent(self, client, paper_trace):
        first = client.submit(paper_trace)
        again = client.submit(paper_trace)
        assert first["created"] and not again["created"]
        assert first["sha256"] == again["sha256"] \
            == trace_sha256(paper_trace)
        assert len(client.traces()) == 1

    def test_metadata_round_trip(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        meta = client.trace(sha)
        assert meta["events"] == 289
        assert meta["ranks"] == 16
        assert meta["format"] == "jsonl"
        assert meta["name"] == "paper.jsonl"

    def test_unreadable_payload_is_rejected(self, client):
        with pytest.raises(ReproError, match="400"):
            client.submit(b"this is not a trace\n")
        with pytest.raises(ReproError, match="400"):
            client.submit(b"")
        assert client.traces() == []

    def test_salvageable_damage_is_accepted_and_flagged(self, client,
                                                        paper_trace):
        damaged = Path(paper_trace).read_bytes()[:-40]
        meta = client.submit(damaged, name="torn.jsonl")
        assert meta["salvaged"]
        assert meta["events"] < 289

    def test_binary_format_sniffed_from_bytes(self, tmp_path, client,
                                              paper_trace):
        from repro.instrument import read_any, write_binary_trace
        binary = tmp_path / "paper.rptb"
        write_binary_trace(binary, read_any(paper_trace))
        meta = client.submit(binary)
        assert meta["format"] == "rptb"
        assert meta["events"] == 289

    def test_store_api_direct(self, tmp_path, paper_trace):
        store = TraceStore(tmp_path / "direct")
        meta, created = store.add_file(paper_trace)
        assert created
        assert meta.sha256 in store
        assert store.path(meta.sha256).read_bytes() \
            == Path(paper_trace).read_bytes()
        with pytest.raises(TraceError):
            store.path("0" * 64)
        with pytest.raises(TraceError):
            store.get("0" * 64)


# ----------------------------------------------------------------------
# Jobs: validation, single-flight, cache persistence
# ----------------------------------------------------------------------
class TestJobValidation:
    def test_normalize_fills_defaults(self):
        assert normalize_params("analyze", None) == {"index": "euclidean"}
        assert normalize_params("temporal", {"windows": 4}) \
            == {"index": "euclidean", "windows": 4}

    @pytest.mark.parametrize("kind,params", [
        ("nonsense", {}),
        ("analyze", {"windows": 4}),
        ("analyze", {"index": ""}),
        ("temporal", {"windows": 0}),
        ("temporal", {"windows": 1 << 20}),
        ("temporal", {"windows": True}),
        ("analyze", {"frobnicate": 1}),
    ])
    def test_bad_parameters_rejected(self, kind, params):
        with pytest.raises(ReproError):
            normalize_params(kind, params)

    def test_http_rejects_bad_requests(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        with pytest.raises(ReproError, match="400"):
            client.report(sha, "nonsense")
        with pytest.raises(ReproError, match="400"):
            client.report(sha, "analyze", windows=4)
        with pytest.raises(ReproError, match="404"):
            client.report("0" * 64, "analyze")

    def test_unknown_index_is_a_job_error_not_a_crash(self, client,
                                                      paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        with pytest.raises(ReproError, match="422"):
            client.report(sha, "analyze", index="no-such-index")
        # The failure is not sticky: the error was never cached.
        assert client.metrics()["counters"]["jobs_failed"] == 1
        assert client.fetch_text(sha) == GOLDEN.read_text()


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(
            self, tmp_path, paper_trace, monkeypatch):
        """Two threads ask for the same uncached report; the in-flight
        table guarantees exactly one build_report call and identical
        payloads for both."""
        import repro.serve.jobs as jobs_module
        store = TraceStore(tmp_path / "store")
        meta, _ = store.add_file(paper_trace)
        calls = []
        release = threading.Event()
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            calls.append(kind)
            release.wait(timeout=10)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        runner = JobRunner(store, ReportCache(tmp_path / "cache"),
                           metrics=ServiceMetrics(), workers=2)
        results = []

        def fetch():
            results.append(runner.fetch(meta.sha256, "analyze"))

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for thread in threads:
            thread.start()
        # Both requests are now either merged onto the one in-flight
        # future or one of them finished; let the computation proceed.
        time.sleep(0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        runner.shutdown()
        assert calls == ["analyze"]
        assert len(results) == 2
        assert results[0]["text"] == results[1]["text"] \
            == GOLDEN.read_text()

    def test_http_concurrent_submissions_compute_once(self, server,
                                                      client,
                                                      paper_trace):
        """The satellite's threaded test at the HTTP layer: the same
        trace submitted twice concurrently triggers one computation and
        both callers get identical payloads."""
        sha = client.submit(paper_trace)["sha256"]
        results = []

        def fetch():
            results.append(ServeClient(server.url).report(sha, "analyze"))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4
        texts = {payload["text"] for payload in results}
        assert texts == {GOLDEN.read_text()}
        counters = client.metrics()["counters"]
        assert counters["jobs_computed"] == 1
        assert counters["report_cache_misses"] == 1

    def test_restarted_daemon_serves_from_the_shared_cache(
            self, tmp_path, paper_trace):
        with AnalysisServer(tmp_path / "store", port=0) as first:
            sha = ServeClient(first.url).submit(paper_trace)["sha256"]
            text = ServeClient(first.url).fetch_text(sha)
        with AnalysisServer(tmp_path / "store", port=0) as second:
            revived = ServeClient(second.url)
            payload = revived.report(sha, "analyze")
            assert payload["cached"]
            assert payload["text"] == text
            counters = revived.metrics()["counters"]
            assert counters.get("jobs_computed", 0) == 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_metrics_shape(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        client.report(sha, "analyze")
        client.report(sha, "analyze")
        snapshot = client.metrics()
        counters = snapshot["counters"]
        assert counters["traces_ingested"] == 1
        assert counters["reports_requested"] == 2
        assert counters["report_cache_hits"] == 1
        assert counters["report_cache_misses"] == 1
        assert snapshot["cache"]["entries"] == 1
        assert snapshot["gauges"]["queue_depth"] == 0
        for family in ("ingest", "report_hit", "report_miss"):
            stats = snapshot["latency"][family]
            assert stats["count"] >= 1
            assert stats["p50_seconds"] is not None
            assert stats["p99_seconds"] >= stats["p50_seconds"] or True
        assert snapshot["workers"] == 2

    def test_unknown_endpoint_is_404_not_a_crash(self, server, client):
        with pytest.raises(ReproError, match="404"):
            client._request("GET", "/frobnicate")
        assert client.health()["status"] == "ok"


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_shutdown_drains_inflight_jobs(self, tmp_path, paper_trace,
                                           monkeypatch):
        """A job still computing when shutdown starts finishes and its
        result lands in the shared cache."""
        import repro.serve.jobs as jobs_module
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            time.sleep(0.4)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        server = AnalysisServer(tmp_path / "store", port=0, workers=2)
        server.start()
        client = ServeClient(server.url)
        sha = client.submit(paper_trace)["sha256"]
        pending = client.report(sha, "analyze", wait=False)
        assert pending["status"] == "pending"
        server.shutdown()     # must block until the job drained
        cached = ReportCache(tmp_path / "store" / "report-cache")
        payload = json.loads(cached.get(pending["key"]))
        assert payload["status"] == "ok"
        assert payload["text"] == GOLDEN.read_text()

    def test_sigterm_exits_cleanly_without_dropping_traces(
            self, tmp_path, paper_trace):
        """The acceptance criterion, end to end: SIGTERM a real
        ``repro serve`` process after submitting a trace; it drains,
        exits 0, and the trace survives in the store."""
        ready = tmp_path / "ready.txt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "store"),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert time.monotonic() < deadline, "daemon never ready"
                assert process.poll() is None, "daemon died on startup"
                time.sleep(0.05)
            _, port = ready.read_text().split()
            client = ServeClient(f"http://127.0.0.1:{port}")
            sha = client.submit(paper_trace)["sha256"]
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "draining" in output
        store = TraceStore(tmp_path / "store")
        assert sha in store
        assert store.get(sha).events == 289
