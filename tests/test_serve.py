"""Tests for the analysis service daemon (repro.serve).

The load-bearing guarantees:

* a report fetched from the daemon is **byte-identical** to the
  corresponding CLI command's stdout for the same trace and parameters
  (golden test on the synthesized paper trace, all four job kinds);
* the trace store is content-addressed and idempotent, validating
  ingests with the salvage-tolerant readers;
* concurrent requests for the same report trigger **one** computation
  (single-flight), and a daemon restarted over the same store serves
  yesterday's reports from the shared cache without recomputing;
* shutdown drains in-flight jobs (their results land in the cache) and
  a SIGTERM'd ``repro serve`` process exits cleanly without dropping a
  submitted trace.
"""

import http.client
import http.server
import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager, redirect_stdout
from pathlib import Path

import pytest

from repro.cache import ReportCache
from repro.cli import main
from repro.errors import ReproError, TraceError
from repro.serve import (AnalysisServer, JobRunner, QueueFullError,
                         ServeClient, ServiceDrainingError,
                         ServiceMetrics, TraceStore, normalize_params,
                         trace_sha256)

GOLDEN = Path(__file__).resolve().parent.parent / "docs" / "paper_report.txt"


@pytest.fixture(scope="module")
def paper_trace(tmp_path_factory):
    """The synthesized paper trace (profile == the paper's dataset)."""
    from repro.calibrate import synthesize_paper_trace
    path = tmp_path_factory.mktemp("paper") / "paper.jsonl"
    synthesize_paper_trace(path)
    return str(path)


@pytest.fixture()
def server(tmp_path):
    with AnalysisServer(tmp_path / "store", port=0, workers=2) as daemon:
        yield daemon


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def cli_stdout(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(argv) == 0
    return buffer.getvalue()


def raw_request(server, method, path, body=None, headers=None):
    """One request via http.client, returning (status, headers, payload).

    Unlike :class:`ServeClient` this neither retries nor raises, so
    tests can inspect the exact status line and headers of one
    response (429 Retry-After, 400 on malformed headers, ...).
    """
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.putrequest(method, path)
        for name, value in (headers or {}).items():
            conn.putheader(name, value)
        if body is not None and "Content-Length" not in (headers or {}):
            conn.putheader("Content-Length", str(len(body)))
        conn.endheaders()
        if body:
            conn.send(body)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Byte-identity: the acceptance bar
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("kind,argv,params", [
        ("analyze", ["analyze", "{t}"], {}),
        ("diagnose", ["analyze", "{t}", "--diagnose"], {}),
        ("whatif", ["analyze", "{t}", "--whatif"], {}),
        ("temporal", ["temporal", "{t}", "--windows", "8"],
         {"windows": 8}),
    ])
    def test_served_report_matches_cli_stdout(self, client, paper_trace,
                                              kind, argv, params):
        sha = client.submit(paper_trace)["sha256"]
        payload = client.report(sha, kind, **params)
        expected = cli_stdout([part.format(t=paper_trace)
                               for part in argv])
        assert payload["text"] == expected
        assert payload["status"] == "ok"
        assert not payload["cached"]
        # Second fetch: served from the on-disk cache, same bytes.
        again = client.report(sha, kind, **params)
        assert again["cached"]
        assert again["text"] == expected

    def test_analyze_serves_the_golden_bytes(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        assert client.fetch_text(sha) == GOLDEN.read_text()

    def test_fetch_cli_verb_is_byte_identical(self, server, paper_trace,
                                              capsys):
        assert main(["fetch", paper_trace, "--url", server.url]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_structured_report_rides_along(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        report = client.report(sha, "analyze")["report"]
        assert report["schema"] == "repro-report/1"
        assert report["program"]["n_processors"] == 16
        assert set(report["dispersion"]) \
            == set(report["program"]["regions"])


# ----------------------------------------------------------------------
# The content-addressed store
# ----------------------------------------------------------------------
class TestTraceStore:
    def test_submit_is_idempotent(self, client, paper_trace):
        first = client.submit(paper_trace)
        again = client.submit(paper_trace)
        assert first["created"] and not again["created"]
        assert first["sha256"] == again["sha256"] \
            == trace_sha256(paper_trace)
        assert len(client.traces()) == 1

    def test_metadata_round_trip(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        meta = client.trace(sha)
        assert meta["events"] == 289
        assert meta["ranks"] == 16
        assert meta["format"] == "jsonl"
        assert meta["name"] == "paper.jsonl"

    def test_unreadable_payload_is_rejected(self, client):
        with pytest.raises(ReproError, match="400"):
            client.submit(b"this is not a trace\n")
        with pytest.raises(ReproError, match="400"):
            client.submit(b"")
        assert client.traces() == []

    def test_salvageable_damage_is_accepted_and_flagged(self, client,
                                                        paper_trace):
        damaged = Path(paper_trace).read_bytes()[:-40]
        meta = client.submit(damaged, name="torn.jsonl")
        assert meta["salvaged"]
        assert meta["events"] < 289

    def test_binary_format_sniffed_from_bytes(self, tmp_path, client,
                                              paper_trace):
        from repro.instrument import read_any, write_binary_trace
        binary = tmp_path / "paper.rptb"
        write_binary_trace(binary, read_any(paper_trace))
        meta = client.submit(binary)
        assert meta["format"] == "rptb"
        assert meta["events"] == 289

    def test_store_api_direct(self, tmp_path, paper_trace):
        store = TraceStore(tmp_path / "direct")
        meta, created = store.add_file(paper_trace)
        assert created
        assert meta.sha256 in store
        assert store.path(meta.sha256).read_bytes() \
            == Path(paper_trace).read_bytes()
        with pytest.raises(TraceError):
            store.path("0" * 64)
        with pytest.raises(TraceError):
            store.get("0" * 64)


# ----------------------------------------------------------------------
# Jobs: validation, single-flight, cache persistence
# ----------------------------------------------------------------------
class TestJobValidation:
    def test_normalize_fills_defaults(self):
        assert normalize_params("analyze", None) == {"index": "euclidean"}
        assert normalize_params("temporal", {"windows": 4}) \
            == {"index": "euclidean", "windows": 4}

    @pytest.mark.parametrize("kind,params", [
        ("nonsense", {}),
        ("analyze", {"windows": 4}),
        ("analyze", {"index": ""}),
        ("temporal", {"windows": 0}),
        ("temporal", {"windows": 1 << 20}),
        ("temporal", {"windows": True}),
        ("analyze", {"frobnicate": 1}),
    ])
    def test_bad_parameters_rejected(self, kind, params):
        with pytest.raises(ReproError):
            normalize_params(kind, params)

    def test_http_rejects_bad_requests(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        with pytest.raises(ReproError, match="400"):
            client.report(sha, "nonsense")
        with pytest.raises(ReproError, match="400"):
            client.report(sha, "analyze", windows=4)
        with pytest.raises(ReproError, match="404"):
            client.report("0" * 64, "analyze")

    def test_unknown_index_is_a_job_error_not_a_crash(self, client,
                                                      paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        with pytest.raises(ReproError, match="422"):
            client.report(sha, "analyze", index="no-such-index")
        # The failure is not sticky: the error was never cached.
        assert client.metrics()["counters"]["jobs_failed"] == 1
        assert client.fetch_text(sha) == GOLDEN.read_text()


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(
            self, tmp_path, paper_trace, monkeypatch):
        """Two threads ask for the same uncached report; the in-flight
        table guarantees exactly one build_report call and identical
        payloads for both."""
        import repro.serve.jobs as jobs_module
        store = TraceStore(tmp_path / "store")
        meta, _ = store.add_file(paper_trace)
        calls = []
        release = threading.Event()
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            calls.append(kind)
            release.wait(timeout=10)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        runner = JobRunner(store, ReportCache(tmp_path / "cache"),
                           metrics=ServiceMetrics(), workers=2)
        results = []

        def fetch():
            results.append(runner.fetch(meta.sha256, "analyze"))

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for thread in threads:
            thread.start()
        # Both requests are now either merged onto the one in-flight
        # future or one of them finished; let the computation proceed.
        time.sleep(0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        runner.shutdown()
        assert calls == ["analyze"]
        assert len(results) == 2
        assert results[0]["text"] == results[1]["text"] \
            == GOLDEN.read_text()

    def test_http_concurrent_submissions_compute_once(self, server,
                                                      client,
                                                      paper_trace):
        """The satellite's threaded test at the HTTP layer: the same
        trace submitted twice concurrently triggers one computation and
        both callers get identical payloads."""
        sha = client.submit(paper_trace)["sha256"]
        results = []

        def fetch():
            results.append(ServeClient(server.url).report(sha, "analyze"))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4
        texts = {payload["text"] for payload in results}
        assert texts == {GOLDEN.read_text()}
        counters = client.metrics()["counters"]
        assert counters["jobs_computed"] == 1
        assert counters["report_cache_misses"] == 1

    def test_restarted_daemon_serves_from_the_shared_cache(
            self, tmp_path, paper_trace):
        with AnalysisServer(tmp_path / "store", port=0) as first:
            sha = ServeClient(first.url).submit(paper_trace)["sha256"]
            text = ServeClient(first.url).fetch_text(sha)
        with AnalysisServer(tmp_path / "store", port=0) as second:
            revived = ServeClient(second.url)
            payload = revived.report(sha, "analyze")
            assert payload["cached"]
            assert payload["text"] == text
            counters = revived.metrics()["counters"]
            assert counters.get("jobs_computed", 0) == 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_metrics_shape(self, client, paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        client.report(sha, "analyze")
        client.report(sha, "analyze")
        snapshot = client.metrics()
        counters = snapshot["counters"]
        assert counters["traces_ingested"] == 1
        assert counters["reports_requested"] == 2
        assert counters["report_cache_hits"] == 1
        assert counters["report_cache_misses"] == 1
        assert snapshot["cache"]["entries"] == 1
        assert snapshot["gauges"]["queue_depth"] == 0
        for family in ("ingest", "report_hit", "report_miss"):
            stats = snapshot["latency"][family]
            assert stats["count"] >= 1
            assert stats["p50_seconds"] is not None
            assert stats["p99_seconds"] >= stats["p50_seconds"] or True
        assert snapshot["workers"] == 2

    def test_unknown_endpoint_is_404_not_a_crash(self, server, client):
        with pytest.raises(ReproError, match="404"):
            client._request("GET", "/frobnicate")
        assert client.health()["status"] == "ok"


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_shutdown_drains_inflight_jobs(self, tmp_path, paper_trace,
                                           monkeypatch):
        """A job still computing when shutdown starts finishes and its
        result lands in the shared cache."""
        import repro.serve.jobs as jobs_module
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            time.sleep(0.4)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        server = AnalysisServer(tmp_path / "store", port=0, workers=2)
        server.start()
        client = ServeClient(server.url)
        sha = client.submit(paper_trace)["sha256"]
        pending = client.report(sha, "analyze", wait=False)
        assert pending["status"] == "pending"
        server.shutdown()     # must block until the job drained
        cached = ReportCache(tmp_path / "store" / "report-cache")
        payload = json.loads(cached.get(pending["key"]))
        assert payload["status"] == "ok"
        assert payload["text"] == GOLDEN.read_text()

    def test_sigterm_exits_cleanly_without_dropping_traces(
            self, tmp_path, paper_trace):
        """The acceptance criterion, end to end: SIGTERM a real
        ``repro serve`` process after submitting a trace; it drains,
        exits 0, and the trace survives in the store."""
        ready = tmp_path / "ready.txt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "store"),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert time.monotonic() < deadline, "daemon never ready"
                assert process.poll() is None, "daemon died on startup"
                time.sleep(0.05)
            _, port = ready.read_text().split()
            client = ServeClient(f"http://127.0.0.1:{port}")
            sha = client.submit(paper_trace)["sha256"]
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "draining" in output
        store = TraceStore(tmp_path / "store")
        assert sha in store
        assert store.get(sha).events == 289


# ----------------------------------------------------------------------
# Ingress limits: malformed headers, body caps, bad timeouts, slow-loris
# ----------------------------------------------------------------------
class TestIngressLimits:
    @pytest.mark.parametrize("bad_length", ["banana", "", "1e3", "-7"])
    def test_malformed_content_length_is_400(self, server, client,
                                             bad_length):
        status, _, payload = raw_request(
            server, "POST", "/traces",
            headers={"Content-Length": bad_length})
        assert status == 400
        assert "Content-Length" in payload["error"]
        assert client.health()["status"] == "ok"

    def test_oversized_body_is_413_for_traces_and_reports(self, tmp_path):
        with AnalysisServer(tmp_path / "store", port=0,
                            max_body_bytes=1024) as daemon:
            client = ServeClient(daemon.url, retries=0)
            with pytest.raises(ReproError, match="413"):
                client.submit(b"x" * 2048)
            status, _, payload = raw_request(
                daemon, "POST", "/reports",
                headers={"Content-Length": "99999"})
            assert status == 413
            assert "exceeds" in payload["error"]
            assert client.traces() == []
            counters = client.metrics()["counters"]
            assert counters["responses_4xx"] >= 2
            assert counters.get("responses_5xx", 0) == 0

    @pytest.mark.parametrize("timeout_json", [
        '"soon"', "true", "-5", "NaN", "[1]",
    ])
    def test_bad_report_timeout_is_400(self, server, client, paper_trace,
                                       timeout_json):
        sha = client.submit(paper_trace)["sha256"]
        body = ('{"trace": "%s", "kind": "analyze", '
                '"timeout": %s}' % (sha, timeout_json)).encode()
        status, _, payload = raw_request(server, "POST", "/reports",
                                         body=body)
        assert status == 400
        assert "timeout" in payload["error"]
        assert client.health()["status"] == "ok"

    def test_huge_timeout_is_clamped_not_wedged(self, server, client,
                                                paper_trace):
        """1e999 parses to +inf in JSON; the server clamps it to its
        max wait instead of blocking a handler thread forever."""
        sha = client.submit(paper_trace)["sha256"]
        body = ('{"trace": "%s", "kind": "analyze", '
                '"timeout": 1e999}' % sha).encode()
        status, _, payload = raw_request(server, "POST", "/reports",
                                         body=body)
        assert status == 200
        assert payload["status"] == "ok"

    @pytest.mark.parametrize("wait", ["-1", "nan"])
    def test_bad_get_reports_wait_is_400(self, server, client, wait):
        status, _, _ = raw_request(server, "GET",
                                   f"/reports/{'0' * 64}?wait={wait}")
        assert status == 400

    def test_elapsed_wait_returns_pending_not_500(self, tmp_path,
                                                  paper_trace,
                                                  monkeypatch):
        """A blocking wait that times out answers 202 pending — the job
        keeps running and is fetchable by key afterwards."""
        import repro.serve.jobs as jobs_module
        real_build = jobs_module.build_report
        release = threading.Event()

        def slow_build(path, sha, kind, params):
            release.wait(timeout=30)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        with AnalysisServer(tmp_path / "store", port=0,
                            workers=1) as daemon:
            client = ServeClient(daemon.url, retries=0)
            sha = client.submit(paper_trace)["sha256"]
            payload = client.report(sha, "analyze", timeout=0.2)
            assert payload["status"] == "pending"
            release.set()

    def test_slow_loris_connection_is_cut_with_408(self, tmp_path,
                                                   paper_trace):
        with AnalysisServer(tmp_path / "store", port=0,
                            request_timeout=0.5) as daemon:
            sock = socket.create_connection(daemon.address, timeout=10)
            try:
                sock.sendall(b"POST /traces HTTP/1.1\r\n"
                             b"Host: localhost\r\n"
                             b"Content-Length: 1000\r\n\r\ndribble")
                start = time.monotonic()
                answer = sock.recv(4096)
                elapsed = time.monotonic() - start
            finally:
                sock.close()
            assert answer.split(b"\r\n")[0] == b"HTTP/1.1 408 Request Timeout"
            assert elapsed < 8
            # The stalled connection cost a timeout, not a thread: the
            # daemon still serves.
            client = ServeClient(daemon.url, retries=0)
            assert client.health()["status"] == "ok"
            assert client.metrics()["counters"]["requests_timed_out"] == 1
            assert client.submit(paper_trace)["created"]

    def test_limits_are_published_in_metrics(self, client):
        limits = client.metrics()["limits"]
        assert limits["max_body_bytes"] == 1 << 28
        assert limits["max_queue"] == 64
        assert limits["max_wait_seconds"] == 600.0


# ----------------------------------------------------------------------
# Backpressure: bounded queue, 429 + Retry-After, 503 while draining
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_runner_sheds_when_queue_full(self, tmp_path, paper_trace,
                                          monkeypatch):
        import repro.serve.jobs as jobs_module
        release = threading.Event()
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            release.wait(timeout=30)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        store = TraceStore(tmp_path / "store")
        meta, _ = store.add_file(paper_trace)
        metrics = ServiceMetrics()
        runner = JobRunner(store, ReportCache(tmp_path / "cache"),
                           metrics=metrics, workers=1, max_queue=1)
        try:
            pending = runner.fetch(meta.sha256, "analyze", wait=False)
            assert pending["status"] == "pending"
            with pytest.raises(QueueFullError) as caught:
                runner.fetch(meta.sha256, "temporal", {"windows": 4},
                             wait=False)
            assert caught.value.retry_after >= 1.0
            snapshot = metrics.snapshot()
            assert snapshot["counters"]["jobs_shed"] == 1
            # The shed request queued nothing: one job in flight.
            assert runner.in_flight() == 1
        finally:
            release.set()
            runner.shutdown()

    def test_http_429_carries_retry_after(self, tmp_path, paper_trace,
                                          monkeypatch):
        import repro.serve.jobs as jobs_module
        release = threading.Event()
        real_build = jobs_module.build_report

        def slow_build(path, sha, kind, params):
            release.wait(timeout=30)
            return real_build(path, sha, kind, params)

        monkeypatch.setattr(jobs_module, "build_report", slow_build)
        with AnalysisServer(tmp_path / "store", port=0, workers=1,
                            max_queue=1) as daemon:
            client = ServeClient(daemon.url, retries=0)
            sha = client.submit(paper_trace)["sha256"]
            first = client.report(sha, "analyze", wait=False)
            assert first["status"] == "pending"
            body = json.dumps({"trace": sha, "kind": "temporal",
                               "params": {"windows": 4},
                               "wait": False}).encode()
            status, headers, payload = raw_request(
                daemon, "POST", "/reports", body=body)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "queue is full" in payload["error"]
            # Shedding applies to new work only: the single-flight
            # merge and the cache hit still answer under pressure.
            merged = client.report(sha, "analyze", wait=False)
            assert merged["status"] == "pending"
            release.set()
            deadline = time.monotonic() + 30
            while daemon.runner.in_flight():
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert client.report(sha, "analyze")["status"] == "ok"
            counters = client.metrics()["counters"]
            assert counters["requests_shed"] == 1
            assert counters.get("responses_5xx", 0) == 0

    def test_draining_runner_answers_503(self, server, client,
                                         paper_trace):
        sha = client.submit(paper_trace)["sha256"]
        cached = client.report(sha, "analyze")
        assert cached["status"] == "ok"
        server.runner._draining = True
        try:
            probe = ServeClient(server.url, retries=0)
            with pytest.raises(ReproError, match="503"):
                probe.report(sha, "temporal", windows=4)
            # Cache hits keep flowing while the pool drains.
            assert probe.report(sha, "analyze")["cached"]
        finally:
            server.runner._draining = False

    def test_shutdown_runner_refuses_new_jobs(self, tmp_path,
                                              paper_trace):
        store = TraceStore(tmp_path / "store")
        meta, _ = store.add_file(paper_trace)
        runner = JobRunner(store, ReportCache(tmp_path / "cache"),
                           workers=1)
        runner.shutdown()
        assert runner.draining
        with pytest.raises(ServiceDrainingError):
            runner.fetch(meta.sha256, "analyze")


# ----------------------------------------------------------------------
# Bounded storage: the trace store evicts LRU under a byte cap
# ----------------------------------------------------------------------
class TestStoreEviction:
    @staticmethod
    def _age(store, sha, mtime):
        obj, _ = store._find(sha)
        os.utime(obj, (mtime, mtime))

    def test_streamed_ingest_matches_eager(self, tmp_path, paper_trace):
        """Hash-while-reading in tiny chunks lands the same object,
        digest and metadata as the eager in-memory path."""
        data = Path(paper_trace).read_bytes()
        eager = TraceStore(tmp_path / "eager")
        chunked = TraceStore(tmp_path / "chunked")
        meta_eager, _ = eager.add_bytes(data, name="t")
        with open(paper_trace, "rb") as stream:
            meta_chunked, created = chunked.add_stream(
                stream, name="t", chunk_size=7)
        assert created
        assert meta_chunked == meta_eager
        assert chunked.path(meta_chunked.sha256).read_bytes() == data

    def test_add_file_streams_and_dedups(self, tmp_path, paper_trace):
        store = TraceStore(tmp_path / "store")
        meta, created = store.add_file(paper_trace)
        assert created
        again, created_again = store.add_file(paper_trace)
        assert not created_again
        assert again == meta

    def test_lru_trace_evicted_under_cap(self, tmp_path, paper_trace):
        store = TraceStore(tmp_path / "store")
        data = Path(paper_trace).read_bytes()
        shas = []
        for index in range(3):
            meta, _ = store.add_bytes(data + b"\n" * (index + 1),
                                      name=f"v{index}")
            shas.append(meta.sha256)
            self._age(store, meta.sha256, 1_000_000 + index)
        store.max_bytes = store.total_bytes() + 10
        newest, _ = store.add_bytes(data + b"\n" * 16, name="v3")
        assert shas[0] not in store
        assert newest.sha256 in store
        assert shas[2] in store
        assert store.total_bytes() <= store.max_bytes
        assert store.stats()["evictions"] >= 1
        with pytest.raises(TraceError):
            store.get(shas[0])
        # The sidecar went with the bytes: no orphaned metadata.
        leftovers = [p.name for p in (tmp_path / "store" / "objects")
                     .iterdir() if p.name.startswith(shas[0])]
        assert leftovers == []

    def test_analysis_read_refreshes_recency(self, tmp_path, paper_trace):
        store = TraceStore(tmp_path / "store")
        data = Path(paper_trace).read_bytes()
        first, _ = store.add_bytes(data + b"\n")
        second, _ = store.add_bytes(data + b"\n\n")
        self._age(store, first.sha256, 1_000_000)
        self._age(store, second.sha256, 1_000_001)
        store.path(first.sha256)       # "analyzed" now: newest
        store.max_bytes = store.total_bytes() + 10
        third, _ = store.add_bytes(data + b"\n\n\n")
        assert second.sha256 not in store
        assert first.sha256 in store
        assert third.sha256 in store

    def test_just_ingested_trace_never_evicted(self, tmp_path,
                                               paper_trace):
        store = TraceStore(tmp_path / "store", max_bytes=1)
        meta, created = store.add_file(paper_trace)
        assert created
        assert meta.sha256 in store
        assert store.stats()["evictions"] == 0

    def test_evicted_trace_keeps_its_cached_reports(self, tmp_path,
                                                    paper_trace):
        """Eviction reclaims trace bytes, not served results: a report
        cached before its trace was evicted is still a hit."""
        with AnalysisServer(tmp_path / "store", port=0,
                            workers=1) as daemon:
            client = ServeClient(daemon.url, retries=0)
            sha = client.submit(paper_trace)["sha256"]
            text = client.fetch_text(sha)
            daemon.store.max_bytes = 1
            other = Path(paper_trace).read_bytes() + b"\n"
            client.submit(other, name="other")
            assert len(client.traces()) == 1   # first trace evicted
            payload = client.report(sha, "analyze")
            assert payload["cached"]
            assert payload["text"] == text
            # But a *new* analysis of the evicted trace needs resubmission.
            with pytest.raises(ReproError, match="404"):
                client.report(sha, "diagnose")


# ----------------------------------------------------------------------
# Client resilience: retry with backoff on 429/503/connection errors
# ----------------------------------------------------------------------
class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Answers from a canned (status, headers, payload) script."""

    def _respond(self):
        self.server.seen.append(f"{self.command} {self.path}")
        status, headers, payload = (
            self.server.script.pop(0) if self.server.script
            else (200, {}, {"status": "ok"}))
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format, *args):  # noqa: A002
        pass


@contextmanager
def scripted_service(script):
    httpd = http.server.HTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    httpd.script = list(script)
    httpd.seen = []
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)


def patient_client(url, sleeps, retries=2, **kwargs):
    """A ServeClient whose sleeps are recorded, not slept, and whose
    jitter roll is pinned to the midpoint (multiplier exactly 1.0)."""
    return ServeClient(url, retries=retries, sleep=sleeps.append,
                       rng=lambda: 0.5, **kwargs)


class TestClientRetry:
    def test_retries_429_and_honors_retry_after(self):
        script = [(429, {"Retry-After": "3"}, {"error": "full"})]
        sleeps = []
        with scripted_service(script) as (httpd, url):
            health = patient_client(url, sleeps).health()
        assert health == {"status": "ok"}
        assert httpd.seen == ["GET /healthz"] * 2
        assert sleeps == [3.0]     # server floor beats the 0.25s backoff

    def test_retries_503_with_exponential_backoff(self):
        script = [(503, {}, {"error": "draining"}),
                  (503, {}, {"error": "draining"})]
        sleeps = []
        with scripted_service(script) as (httpd, url):
            health = patient_client(url, sleeps).health()
        assert health == {"status": "ok"}
        assert len(httpd.seen) == 3
        assert sleeps == [0.25, 0.5]   # base * 2^attempt, jitter pinned

    def test_backoff_is_capped_by_retry_max_wait(self):
        script = [(503, {}, {"error": "x"})] * 3
        sleeps = []
        with scripted_service(script) as (httpd, url):
            patient_client(url, sleeps, retries=3,
                           retry_max_wait=0.4).health()
        assert sleeps == [0.25, 0.4, 0.4]

    def test_unparseable_retry_after_falls_back_to_backoff(self):
        script = [(429, {"Retry-After": "Fri, 31 Dec 1999 23:59:59 GMT"},
                   {"error": "full"})]
        sleeps = []
        with scripted_service(script) as (_, url):
            patient_client(url, sleeps).health()
        assert sleeps == [0.25]

    def test_exhausted_retries_surface_the_last_error(self):
        script = [(429, {"Retry-After": "1"}, {"error": "still full"})] * 3
        sleeps = []
        with scripted_service(script) as (httpd, url):
            with pytest.raises(ReproError, match="429.*still full"):
                patient_client(url, sleeps).health()
        assert len(httpd.seen) == 3
        assert len(sleeps) == 2

    @pytest.mark.parametrize("status", [400, 404, 413, 422])
    def test_definite_4xx_is_never_retried(self, status):
        script = [(status, {}, {"error": "definitely no"})]
        sleeps = []
        with scripted_service(script) as (httpd, url):
            with pytest.raises(ReproError, match=str(status)):
                patient_client(url, sleeps).health()
        assert len(httpd.seen) == 1
        assert sleeps == []

    def test_connection_errors_are_retried(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = patient_client(f"http://127.0.0.1:{port}", sleeps)
        with pytest.raises(ReproError, match="cannot reach"):
            client.health()
        assert sleeps == [0.25, 0.5]

    def test_zero_retries_means_one_attempt(self):
        script = [(503, {}, {"error": "draining"})]
        sleeps = []
        with scripted_service(script) as (httpd, url):
            with pytest.raises(ReproError, match="503"):
                patient_client(url, sleeps, retries=0).health()
        assert len(httpd.seen) == 1
        assert sleeps == []

    def test_negative_retry_configuration_rejected(self):
        with pytest.raises(ReproError, match="retries"):
            ServeClient("http://localhost:1", retries=-1)
        with pytest.raises(ReproError, match="waits"):
            ServeClient("http://localhost:1", retry_max_wait=-1.0)

    def test_submit_survives_a_shed_daemon(self, server, paper_trace,
                                           monkeypatch):
        """End to end against the real daemon: a submission answered
        429 twice by a wrapped handler succeeds on the third try."""
        flaky = {"remaining": 2}
        import repro.serve.server as server_module
        original = server_module._Handler._post_traces

        def shaky(self, rest, query):
            if flaky["remaining"] > 0:
                flaky["remaining"] -= 1
                raise QueueFullError("synthetic overload",
                                     retry_after=1.0)
            return original(self, rest, query)

        monkeypatch.setattr(server_module._Handler, "_post_traces",
                            shaky)
        sleeps = []
        client = patient_client(server.url, sleeps)
        meta = client.submit(paper_trace)
        assert meta["created"]
        assert len(sleeps) == 2
        assert all(wait >= 1.0 for wait in sleeps)
