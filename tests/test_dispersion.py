"""Unit tests for the indices of dispersion."""

import numpy as np
import pytest

from repro.core import dispersion as disp
from repro.core import (available_indices, coefficient_of_variation,
                        euclidean_distance, get_index, gini_coefficient,
                        imbalance_time, mean_absolute_deviation,
                        theil_index, variance)
from repro.errors import DispersionError

BALANCED = [0.25, 0.25, 0.25, 0.25]
CONCENTRATED = [1.0, 0.0, 0.0, 0.0]


class TestRegistry:
    def test_expected_indices_present(self):
        names = available_indices()
        for expected in ("euclidean", "variance", "cv", "mad", "max",
                         "range", "sum", "gini", "theil"):
            assert expected in names

    def test_get_index_roundtrip(self):
        assert get_index("euclidean") is euclidean_distance

    def test_get_unknown_index(self):
        with pytest.raises(DispersionError):
            get_index("nope")

    def test_double_registration_rejected(self):
        with pytest.raises(DispersionError):
            disp.register_index("euclidean")(lambda values: 0.0)


class TestEuclidean:
    def test_balanced_is_zero(self):
        assert euclidean_distance(BALANCED) == 0.0

    def test_concentrated_value(self):
        # distance of (1,0,0,0) from its mean 0.25:
        # sqrt(0.75^2 + 3 * 0.25^2) = sqrt(0.75)
        assert euclidean_distance(CONCENTRATED) == pytest.approx(
            np.sqrt(0.75))

    def test_hand_computed(self):
        # (0.5, 0.5, 0, 0): deviations (±0.25) -> sqrt(4 * 0.0625) = 0.5
        assert euclidean_distance([0.5, 0.5, 0.0, 0.0]) == pytest.approx(0.5)

    def test_matches_paper_standardization(self):
        # Standardized times 1/16 + d * spotlight must give back d.
        from repro.calibrate import shares, spotlight
        values = shares(16, 0.12870, spotlight(16, 1, +1))
        assert euclidean_distance(values) == pytest.approx(0.12870)

    def test_rejects_empty(self):
        with pytest.raises(DispersionError):
            euclidean_distance([])

    def test_rejects_nan(self):
        with pytest.raises(DispersionError):
            euclidean_distance([1.0, float("nan")])


class TestOtherIndices:
    def test_variance(self):
        assert variance([1.0, 3.0]) == pytest.approx(1.0)

    def test_cv(self):
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(DispersionError):
            coefficient_of_variation([0.0, 0.0])

    def test_mad(self):
        assert mean_absolute_deviation([1.0, 3.0]) == pytest.approx(1.0)

    def test_max_and_range(self):
        assert get_index("max")([1.0, 5.0, 3.0]) == 5.0
        assert get_index("range")([1.0, 5.0, 3.0]) == 4.0

    def test_sum(self):
        assert get_index("sum")(BALANCED) == pytest.approx(1.0)

    def test_gini_balanced(self):
        assert gini_coefficient(BALANCED) == pytest.approx(0.0, abs=1e-12)

    def test_gini_concentrated(self):
        assert gini_coefficient(CONCENTRATED) == pytest.approx(0.75)

    def test_gini_rejects_negative(self):
        with pytest.raises(DispersionError):
            gini_coefficient([1.0, -1.0])

    def test_theil_balanced(self):
        assert theil_index(BALANCED) == pytest.approx(0.0, abs=1e-12)

    def test_theil_concentrated(self):
        # (1/n) * (x/mean) * ln(x/mean) summed: (1/4) * 4 * ln(4) = ln(4)
        assert theil_index(CONCENTRATED) == pytest.approx(np.log(4))

    def test_imbalance_time(self):
        assert imbalance_time([2.0, 4.0, 6.0]) == pytest.approx(2.0)


class TestDashCells:
    """Regression: all-zero data sets ("dash" cells the paper prints as
    ``-``) are rejected by *every* index.

    Historically euclidean/variance/mad/max/range/sum returned 0.0 on
    all-zero input — making a not-performed cell look perfectly
    balanced — while cv, Gini and Theil raised.  Scalar and batch paths
    now raise identically; the matrix paths skip dash cells as ``nan``.
    """

    ZEROS = [0.0, 0.0, 0.0]

    def test_every_index_rejects_all_zero(self):
        for name in available_indices():
            with pytest.raises(DispersionError):
                get_index(name)(self.ZEROS)

    def test_imbalance_time_rejects_all_zero(self):
        with pytest.raises(DispersionError):
            imbalance_time(self.ZEROS)

    def test_single_zero_rejected(self):
        with pytest.raises(DispersionError):
            euclidean_distance([0.0])

    def test_negative_zero_counts_as_zero(self):
        with pytest.raises(DispersionError):
            euclidean_distance([0.0, -0.0])

    def test_mixed_sign_zero_sum_still_accepted(self):
        # Only *all-zero* data is a dash cell; a zero-sum mix is valid
        # input for the sign-agnostic indices.
        assert euclidean_distance([1.0, -1.0]) == pytest.approx(np.sqrt(2))


class TestScaleBehaviour:
    """Euclidean on *standardized* data is scale-free by construction."""

    def test_standardized_scale_invariance(self):
        raw = np.array([1.0, 2.0, 3.0, 4.0])
        for scale in (1.0, 10.0, 1234.5):
            standardized = raw * scale / (raw * scale).sum()
            assert euclidean_distance(standardized) == pytest.approx(
                euclidean_distance(raw / raw.sum()))

    def test_cv_is_scale_invariant_directly(self):
        raw = [1.0, 2.0, 5.0]
        assert coefficient_of_variation(raw) == pytest.approx(
            coefficient_of_variation([10.0, 20.0, 50.0]))
