"""Unit tests for the standardization step."""

import numpy as np
import pytest

from repro.core import (MeasurementSet, balanced_point, standardize,
                        standardize_over_activities,
                        standardize_over_processors,
                        standardize_region_profiles)
from repro.errors import StandardizationError


class TestStandardizeVector:
    def test_sums_to_one(self):
        result = standardize([1.0, 2.0, 3.0])
        assert result.sum() == pytest.approx(1.0)

    def test_preserves_proportions(self):
        result = standardize([1.0, 3.0])
        assert result.tolist() == [0.25, 0.75]

    def test_balanced_input(self):
        result = standardize([5.0, 5.0, 5.0, 5.0])
        np.testing.assert_allclose(result, balanced_point(4))

    def test_rejects_empty(self):
        with pytest.raises(StandardizationError):
            standardize([])

    def test_rejects_negative(self):
        with pytest.raises(StandardizationError):
            standardize([1.0, -1.0])

    def test_rejects_zero_sum(self):
        with pytest.raises(StandardizationError):
            standardize([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(StandardizationError):
            standardize([1.0, float("nan")])

    def test_rejects_matrix(self):
        with pytest.raises(StandardizationError):
            standardize(np.ones((2, 2)))


class TestBalancedPoint:
    def test_values(self):
        np.testing.assert_allclose(balanced_point(5), np.full(5, 0.2))

    def test_rejects_zero(self):
        with pytest.raises(StandardizationError):
            balanced_point(0)


class TestTensorStandardizations:
    def test_over_processors_sums(self, tiny_measurements):
        standardized = standardize_over_processors(tiny_measurements)
        sums = standardized.sum(axis=2)
        performed = tiny_measurements.performed
        np.testing.assert_allclose(sums[performed], 1.0)
        np.testing.assert_allclose(sums[~performed], 0.0)

    def test_over_processors_values(self, tiny_measurements):
        standardized = standardize_over_processors(tiny_measurements)
        # region A / activity Y: all 4.0 on processor 0.
        assert standardized[0, 1].tolist() == [1.0, 0.0, 0.0, 0.0]
        # region B / activity X: 1,2,3,2 over sum 8.
        np.testing.assert_allclose(standardized[1, 0],
                                   [0.125, 0.25, 0.375, 0.25])

    def test_over_activities_sums(self, tiny_measurements):
        standardized = standardize_over_activities(tiny_measurements)
        sums = standardized.sum(axis=1)          # (N, P)
        np.testing.assert_allclose(sums, 1.0)

    def test_over_activities_profile(self, tiny_measurements):
        standardized = standardize_over_activities(tiny_measurements)
        # region A, processor 0: X=2, Y=4 -> (1/3, 2/3).
        np.testing.assert_allclose(standardized[0, :, 0], [1 / 3, 2 / 3])
        # region A, processor 1: X=2, Y=0 -> (1, 0).
        np.testing.assert_allclose(standardized[0, :, 1], [1.0, 0.0])

    def test_region_profiles(self, tiny_measurements):
        profiles = standardize_region_profiles(tiny_measurements)
        # region A: t_ij = (2, 4) under max aggregation -> (1/3, 2/3).
        np.testing.assert_allclose(profiles[0], [1 / 3, 2 / 3])
        np.testing.assert_allclose(profiles[1], [1.0, 0.0])

    def test_zero_processor_slice_stays_zero(self):
        times = np.zeros((1, 2, 3))
        times[0, 0] = [1.0, 2.0, 0.0]
        ms = MeasurementSet(times)
        standardized = standardize_over_activities(ms)
        # processor 2 has no time at all: its profile stays zero.
        np.testing.assert_allclose(standardized[0, :, 2], 0.0)
