"""Property-based tests for the batch engine (companion to
``test_properties_dispersion.py``, which covers the scalar indices).

hypothesis searches for tensors breaking the batch engine's algebra:

* every performed cell's standardized slice lands on the probability
  simplex (sums to one), dash cells stay identically zero;
* index matrices are invariant under permuting processors and under
  rescaling all times (standardization makes every index scale-free);
* the paper's Euclidean index is zero exactly on perfectly balanced
  cells and strictly positive otherwise;
* the batch engine agrees with the scalar loop on whatever hypothesis
  throws at it (the randomized counterpart of the fixed differential
  cases).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (BatchAnalysis, MeasurementSet, available_indices,
                        scalar_dispersion_matrix)


@st.composite
def tensors(draw, max_n=4, max_k=3, max_p=8):
    """Small non-negative tensors, with dash cells and at least one
    performed cell."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=max_k))
    p = draw(st.integers(min_value=1, max_value=max_p))
    cells = draw(st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
                 min_size=p, max_size=p),
        min_size=n * k, max_size=n * k))
    tensor = np.array(cells, dtype=float).reshape(n, k, p)
    # Guarantee at least one performed cell.
    if not tensor.any():
        tensor[0, 0, 0] = 1.0
    return tensor


@settings(max_examples=150, deadline=None)
@given(tensors())
def test_standardized_cells_land_on_simplex(tensor):
    measurements = MeasurementSet(tensor)
    batch = BatchAnalysis(measurements)
    sums = batch.standardized_over_processors.sum(axis=2)
    performed = batch.performed
    np.testing.assert_allclose(sums[performed], 1.0, rtol=1e-9)
    np.testing.assert_array_equal(sums[~performed], 0.0)
    # The packed cells are exactly the performed slices.
    assert batch.cells.shape == (int(performed.sum()),
                                 measurements.n_processors)
    if batch.cells.size:
        np.testing.assert_allclose(batch.cells.sum(axis=1), 1.0, rtol=1e-9)


@settings(max_examples=100, deadline=None)
@given(tensors(), st.randoms(use_true_random=False))
def test_indices_permutation_invariant(tensor, random):
    """Relabeling processors permutes nothing observable: every index
    matrix is unchanged."""
    permutation = list(range(tensor.shape[2]))
    random.shuffle(permutation)
    original = BatchAnalysis(MeasurementSet(tensor))
    permuted = BatchAnalysis(MeasurementSet(tensor[:, :, permutation]))
    for name in available_indices():
        np.testing.assert_allclose(
            original.matrix(name), permuted.matrix(name),
            rtol=1e-9, atol=1e-12,
            err_msg=f"{name} not permutation-invariant")


@settings(max_examples=100, deadline=None)
@given(tensors(), st.floats(min_value=1e-3, max_value=1e3,
                            allow_nan=False, allow_infinity=False))
def test_indices_scale_invariant(tensor, scale):
    """Multiplying every time by a positive constant changes no index:
    standardization divides the scale right back out."""
    # Denormal times can underflow to exactly zero under the scale,
    # flipping a cell's performed mask — that changes the *input*, not
    # the index, so such draws are out of scope for the invariance.
    assume(np.array_equal(tensor > 0.0, tensor * scale > 0.0))
    original = BatchAnalysis(MeasurementSet(tensor))
    scaled = BatchAnalysis(MeasurementSet(tensor * scale))
    for name in available_indices():
        np.testing.assert_allclose(
            original.matrix(name), scaled.matrix(name),
            rtol=1e-9, atol=1e-12,
            err_msg=f"{name} not scale-invariant")


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=1, max_value=16),
       st.floats(min_value=1e-3, max_value=1e3))
def test_euclidean_zero_on_perfect_balance(p, value):
    """A cell where every processor spends the same time scores 0."""
    tensor = np.full((1, 1, p), value)
    matrix = BatchAnalysis(MeasurementSet(tensor)).matrix("euclidean")
    assert matrix[0, 0] == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=150, deadline=None)
@given(tensors(max_p=6))
def test_euclidean_positive_iff_imbalanced(tensor):
    """The converse direction: a strictly positive index pins a cell
    whose processors genuinely differ, and zero pins equality."""
    measurements = MeasurementSet(tensor)
    batch = BatchAnalysis(measurements)
    matrix = batch.matrix("euclidean")
    performed = batch.performed
    for i in range(measurements.n_regions):
        for j in range(measurements.n_activities):
            if not performed[i, j]:
                assert np.isnan(matrix[i, j])
                continue
            slice_ = tensor[i, j, :]
            balanced = np.all(slice_ == slice_[0])
            if balanced:
                assert matrix[i, j] == pytest.approx(0.0, abs=1e-9)
            else:
                assert matrix[i, j] > 0.0


@settings(max_examples=75, deadline=None)
@given(tensors())
def test_batch_matches_scalar_on_random_tensors(tensor):
    """Randomized differential: batch == scalar for every index."""
    measurements = MeasurementSet(tensor)
    batch = BatchAnalysis(measurements)
    for name in available_indices():
        np.testing.assert_allclose(
            batch.matrix(name), scalar_dispersion_matrix(measurements, name),
            rtol=1e-12, atol=1e-12, err_msg=f"{name} diverged")


@settings(max_examples=75, deadline=None)
@given(tensors())
def test_processor_dispersion_bounds(tensor):
    """ID_P values are finite, non-negative, and zero wherever a region
    is perfectly homogeneous across processors."""
    measurements = MeasurementSet(tensor)
    matrix = BatchAnalysis(measurements).processor_dispersion()
    assert matrix.shape == (measurements.n_regions,
                            measurements.n_processors)
    assert np.all(np.isfinite(matrix))
    assert np.all(matrix >= 0.0)
