"""Tests of the CFD workload: structure, determinism and paper shape."""

import numpy as np
import pytest

from repro.apps import LOOPS, CFDConfig, run_cfd
from repro.core import analyze
from repro.errors import WorkloadError


class TestConfigValidation:
    def test_defaults_valid(self):
        CFDConfig()

    def test_rejects_bad_grid(self):
        with pytest.raises(WorkloadError):
            CFDConfig(grid=(0, 10))

    def test_rejects_bad_steps(self):
        with pytest.raises(WorkloadError):
            CFDConfig(steps=0)

    def test_rejects_incomplete_sweeps(self):
        with pytest.raises(WorkloadError):
            CFDConfig(sweeps={"loop 1": 1.0})

    def test_rejects_unknown_imbalance_loop(self):
        from repro.apps import Straggler
        with pytest.raises(WorkloadError):
            CFDConfig(loop_imbalance={"loop 99": Straggler()})


class TestStructure:
    def test_seven_regions_sixteen_ranks(self, cfd_measurements):
        assert cfd_measurements.regions == LOOPS
        assert cfd_measurements.n_processors == 16

    def test_activity_signature_matches_table1(self, cfd_measurements):
        performed = cfd_measurements.performed
        names = cfd_measurements.activities
        signature = {
            region: tuple(names[j] for j in range(4) if performed[i, j])
            for i, region in enumerate(cfd_measurements.regions)}
        assert signature["loop 1"] == ("computation", "collective",
                                       "synchronization")
        assert signature["loop 2"] == ("computation", "collective")
        assert signature["loop 3"] == ("computation", "point-to-point")
        assert signature["loop 4"] == ("computation", "point-to-point")
        assert signature["loop 5"] == ("computation", "point-to-point",
                                       "collective", "synchronization")
        assert signature["loop 6"] == ("computation", "point-to-point",
                                       "synchronization")
        assert signature["loop 7"] == ("computation", "collective")

    def test_deterministic(self, cfd_run):
        again = run_cfd()
        np.testing.assert_array_equal(cfd_run[2].times, again[2].times)
        assert cfd_run[0].clocks == again[0].clocks

    def test_small_config_runs(self):
        config = CFDConfig(grid=(64, 64), steps=1)
        result, tracer, ms = run_cfd(config, n_ranks=8)
        assert ms.n_processors == 8
        assert result.elapsed > 0.0

    def test_decomposition_skew_shows_in_computation(self, cfd_measurements):
        comp = cfd_measurements.activity_index("computation")
        loop3 = cfd_measurements.region_index("loop 3")
        times = cfd_measurements.times[loop3, comp, :]
        # The linear decomposition gradient gives the last rank more
        # cells than the first.
        assert times[-1] > times[0]


class TestPaperShape:
    """The §4 qualitative findings, on freshly simulated data."""

    @pytest.fixture(scope="class")
    def result(self, cfd_measurements):
        return analyze(cfd_measurements)

    def test_loop1_heaviest_about_a_quarter(self, result):
        assert result.breakdown.heaviest_region == "loop 1"
        assert 0.20 <= result.breakdown.heaviest_region_share <= 0.40

    def test_computation_dominant(self, result):
        assert result.breakdown.dominant_activity == "computation"

    def test_loop3_longest_p2p(self, result):
        extremes = {e.activity: e for e in result.breakdown.extremes}
        assert extremes["point-to-point"].worst_region == "loop 3"

    def test_three_loops_synchronize(self, result):
        syncing = result.breakdown.regions_performing("synchronization")
        assert len(syncing) == 3

    def test_clusters_heavy_vs_light(self, result):
        assert set(map(frozenset, result.region_clusters)) == {
            frozenset({"loop 1", "loop 2"}),
            frozenset({"loop 3", "loop 4", "loop 5", "loop 6", "loop 7"})}

    def test_sync_most_imbalanced_but_negligible(self, result):
        view = result.activity_view
        assert view.most_imbalanced() == "synchronization"
        assert view.ranking(scaled=True)[-1] == "synchronization"

    def test_loop6_most_imbalanced_loop1_candidate(self, result):
        view = result.region_view
        assert view.most_imbalanced() == "loop 6"
        assert view.most_imbalanced(scaled=True) == "loop 1"

    def test_loop4_hot_block_visible_in_patterns(self, cfd_measurements):
        from repro.core import Band, pattern_grid
        grid = pattern_grid(cfd_measurements, "computation")
        row = grid.row("loop 4")
        hot = {3, 4, 5, 6, 7, 8}
        flagged = {p for p, band in enumerate(row)
                   if band in (Band.MAX, Band.UPPER)}
        assert flagged <= hot
        assert len(flagged) >= 4
