"""Unit tests for the coarse-grain program characterization."""

import numpy as np
import pytest

from repro.core import MeasurementSet, characterize


@pytest.fixture()
def measurements():
    times = np.zeros((3, 2, 2))
    times[0, 0] = [5.0, 6.0]     # R1/X -> t = 6
    times[0, 1] = [1.0, 1.0]     # R1/Y -> t = 1
    times[1, 0] = [2.0, 2.0]     # R2/X -> t = 2
    times[2, 1] = [3.0, 4.0]     # R3/Y -> t = 4 (no X)
    return MeasurementSet(times, regions=("R1", "R2", "R3"),
                          activities=("X", "Y"))


class TestCharacterize:
    def test_dominant_activity(self, measurements):
        breakdown = characterize(measurements)
        # T_X = 8, T_Y = 5.
        assert breakdown.dominant_activity == "X"

    def test_heaviest_region(self, measurements):
        breakdown = characterize(measurements)
        # t = (7, 2, 4).
        assert breakdown.heaviest_region == "R1"
        assert breakdown.heaviest_region_share == pytest.approx(7.0 / 13.0)

    def test_dominant_activity_region(self, measurements):
        breakdown = characterize(measurements)
        assert breakdown.dominant_activity_region == "R1"

    def test_extremes(self, measurements):
        breakdown = characterize(measurements)
        by_activity = {e.activity: e for e in breakdown.extremes}
        assert by_activity["X"].worst_region == "R1"
        assert by_activity["X"].best_region == "R2"
        assert by_activity["X"].worst_time == 6.0
        assert by_activity["Y"].worst_region == "R3"
        assert by_activity["Y"].best_region == "R1"

    def test_extremes_skip_unperformed_regions(self, measurements):
        breakdown = characterize(measurements)
        by_activity = {e.activity: e for e in breakdown.extremes}
        # R3 performs no X, so it can never be X's best region even
        # though its X time (0) would be the minimum.
        assert by_activity["X"].best_region != "R3"

    def test_activity_shares_sum_to_coverage(self, measurements):
        breakdown = characterize(measurements)
        assert sum(breakdown.activity_shares.values()) == pytest.approx(
            measurements.coverage)

    def test_region_shares(self, measurements):
        breakdown = characterize(measurements)
        assert breakdown.region_shares["R2"] == pytest.approx(2.0 / 13.0)

    def test_regions_performing(self, measurements):
        breakdown = characterize(measurements)
        assert breakdown.regions_performing("X") == ("R1", "R2")
        assert breakdown.regions_performing("Y") == ("R1", "R3")


class TestOnPaperData:
    def test_paper_narrative(self, paper_measurements):
        breakdown = characterize(paper_measurements)
        assert breakdown.dominant_activity == "computation"
        assert breakdown.heaviest_region == "loop 1"
        # "about 27% of the overall wall clock time"
        assert breakdown.heaviest_region_share == pytest.approx(0.27, abs=0.01)
        by_activity = {e.activity: e for e in breakdown.extremes}
        # "The loop which spends the longest time in point-to-point
        # communications is loop 3."
        assert by_activity["point-to-point"].worst_region == "loop 3"
        # Loop 1 has the longest computation, collective and
        # synchronization times.
        assert by_activity["computation"].worst_region == "loop 1"
        assert by_activity["collective"].worst_region == "loop 1"
        assert by_activity["synchronization"].worst_region == "loop 1"
        # "only three loops perform synchronizations"
        assert len(breakdown.regions_performing("synchronization")) == 3


class TestRecoveryAttribution:
    """Crash recovery must land in the right activity classes of the
    coarse-grain breakdown: restart as i/o, replayed work as
    computation, both under the region executing at crash time."""

    def _run_with_crash(self, restart_time, replay_factor=1.0):
        from repro.faults import FaultPlan, RankCrash
        from repro.instrument import Tracer, profile
        from repro.simmpi import Simulator

        def program(comm):
            with comm.region("solve"):
                yield from comm.compute(4e-3)
                yield from comm.barrier()

        crash = RankCrash(rank=1, at_time=2e-3, checkpoint_interval=1.5e-3,
                          restart_time=restart_time,
                          replay_factor=replay_factor)
        tracer = Tracer()
        Simulator(4, trace_sink=tracer.record,
                  fault_plan=FaultPlan((crash,))).run(program)
        return crash, profile(tracer), tracer

    def test_restart_time_attributed_to_io(self):
        crash, measurements, _ = self._run_with_crash(restart_time=5e-3)
        io = measurements.activity_index("i/o")
        region = measurements.region_index("solve")
        assert measurements.times[region, io, 1] == pytest.approx(5e-3)
        # Only the crashed rank pays the restart.
        assert measurements.times[region, io, [0, 2, 3]].sum() == 0.0

    def test_replay_attributed_to_computation(self):
        crash, measurements, _ = self._run_with_crash(restart_time=1e-3)
        comp = measurements.activity_index("computation")
        region = measurements.region_index("solve")
        # Crash at 2e-3 with checkpoints every 1.5e-3: 0.5e-3 replayed,
        # on top of the 4e-3 the region computes anyway.
        assert measurements.times[region, comp, 1] == pytest.approx(
            4e-3 + crash.lost_work(2e-3))
        assert measurements.times[region, comp, 0] == pytest.approx(4e-3)

    def test_breakdown_shifts_to_io_and_waiting_with_recovery(self):
        _, measurements, _ = self._run_with_crash(restart_time=0.5)
        breakdown = characterize(measurements)
        # A huge restart: the crashed rank spends ~0.5 s in i/o and the
        # other ranks wait for it at the barrier, so i/o and
        # synchronization dwarf the 4 ms of computation.
        assert breakdown.activity_shares["i/o"] > 0.4
        assert breakdown.dominant_activity in ("i/o", "synchronization")

    def test_zero_replay_factor_skips_recompute(self):
        crash, measurements, _ = self._run_with_crash(restart_time=1e-3,
                                                      replay_factor=0.0)
        comp = measurements.activity_index("computation")
        region = measurements.region_index("solve")
        assert measurements.times[region, comp, 1] == pytest.approx(4e-3)
