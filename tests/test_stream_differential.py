"""Differential suite: the streaming engine against the eager pipeline.

The contract of :class:`OnlineAccumulator`: fed the same events, it
finalizes the very measurements :func:`profile` builds — and therefore
every downstream quantity of the batch engine (dispersion matrices for
every registered index, the three views, the rankings, the efficiency
factorization) agrees to 1e-12, whether the events arrived as one
chunk, as many small chunks, or as independently accumulated shards
merged afterwards.  The windowed accumulator gets the same treatment
against :func:`window_profiles`.
"""

import numpy as np
import pytest

from repro.core import (AnalysisSession, OnlineAccumulator,
                        WindowedAccumulator, available_indices, efficiency)
from repro.instrument import (equal_edges, iter_any, profile,
                              window_profiles, write_binary_trace,
                              write_trace)
from repro.shards import shard_accumulate

TOLERANCE = 1e-12


def chunked(events, size):
    return [events[start:start + size]
            for start in range(0, len(events), size)]


@pytest.fixture(scope="module")
def eager(cfd_run):
    """(events, measurements, session) of the reference pipeline."""
    _, tracer, _ = cfd_run
    measurements = profile(tracer)
    return tracer.events, measurements, AnalysisSession(measurements)


def streamed_session(events, chunk_size):
    accumulator = OnlineAccumulator()
    for chunk in chunked(list(events), chunk_size):
        accumulator.update(chunk)
    return accumulator.session()


def assert_measurements_close(streamed, reference, tolerance=TOLERANCE):
    assert streamed.regions == reference.regions
    assert streamed.activities == reference.activities
    assert streamed.n_processors == reference.n_processors
    np.testing.assert_allclose(streamed.times, reference.times,
                               rtol=0, atol=tolerance)
    assert abs(streamed.total_time
               - reference.total_time) <= tolerance


class TestSingleChunk:
    def test_measurements_are_bit_identical(self, eager):
        events, reference, _ = eager
        streamed = OnlineAccumulator().update(events).finalize()
        assert streamed.regions == reference.regions
        assert streamed.activities == reference.activities
        assert np.array_equal(streamed.times, reference.times)
        assert streamed.total_time == reference.total_time


class TestManyChunks:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 4096])
    def test_measurements_are_bit_identical(self, eager, chunk_size):
        """Per-cell additions happen in event order regardless of the
        chunking, so even the floating point matches bit for bit."""
        events, reference, _ = eager
        streamed = streamed_session(events, chunk_size).measurements
        assert np.array_equal(streamed.times, reference.times)
        assert streamed.total_time == reference.total_time

    def test_every_index_matrix_agrees(self, eager):
        events, _, reference = eager
        session = streamed_session(events, 97)
        for index in available_indices():
            expected = reference.dispersion_matrix(index)
            got = session.dispersion_matrix(index)
            np.testing.assert_allclose(got, expected, rtol=0,
                                       atol=TOLERANCE, equal_nan=True)

    def test_views_agree(self, eager):
        events, _, reference = eager
        session = streamed_session(events, 97)
        for index in ("euclidean", "cv", "gini"):
            activity_view, region_view = session.views(index)
            expected_activity, expected_region = reference.views(index)
            for got, expected in ((activity_view, expected_activity),
                                  (region_view, expected_region)):
                np.testing.assert_allclose(got.dispersion,
                                           expected.dispersion, rtol=0,
                                           atol=TOLERANCE, equal_nan=True)
                np.testing.assert_allclose(got.index, expected.index,
                                           rtol=0, atol=TOLERANCE,
                                           equal_nan=True)
                np.testing.assert_allclose(got.scaled_index,
                                           expected.scaled_index, rtol=0,
                                           atol=TOLERANCE, equal_nan=True)

    def test_processor_view_agrees(self, eager):
        events, _, reference = eager
        session = streamed_session(events, 97)
        np.testing.assert_allclose(
            session.processor_view().dispersion,
            reference.processor_view().dispersion,
            rtol=0, atol=TOLERANCE, equal_nan=True)

    def test_rankings_agree(self, eager):
        events, _, reference = eager
        session = streamed_session(events, 97)
        for kind in ("region", "activity"):
            for criterion, parameters in (("maximum", {}),
                                          ("threshold", {"threshold": 0.1}),
                                          ("share", {})):
                got = session.ranking(kind=kind, criterion=criterion,
                                      **parameters)
                expected = reference.ranking(kind=kind, criterion=criterion,
                                             **parameters)
                assert [item.name for item in got.ordered] \
                    == [item.name for item in expected.ordered]
                for mine, theirs in zip(got.ordered, expected.ordered):
                    assert abs(mine.value - theirs.value) <= TOLERANCE

    def test_efficiency_agrees(self, eager):
        events, reference_set, _ = eager
        streamed = streamed_session(events, 97).measurements
        got = efficiency(streamed)
        expected = efficiency(reference_set)
        for field in ("parallel_efficiency", "load_balance",
                      "communication_efficiency"):
            assert abs(getattr(got, field)
                       - getattr(expected, field)) <= TOLERANCE


class TestShardedMerge:
    @pytest.mark.parametrize("n_parts", [2, 3, 8])
    def test_merged_shards_agree(self, eager, n_parts):
        """Partial accumulators over disjoint event ranges, merged in
        order, agree with the eager profile to summation rounding."""
        events, reference, _ = eager
        count = len(events)
        parts = []
        for index in range(n_parts):
            lo = index * count // n_parts
            hi = (index + 1) * count // n_parts
            parts.append(OnlineAccumulator().update(events[lo:hi]))
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert_measurements_close(merged.finalize(), reference)

    def test_merged_session_matrices_agree(self, eager):
        events, _, reference = eager
        half = len(events) // 2
        merged = OnlineAccumulator().update(events[:half]).merge(
            OnlineAccumulator().update(events[half:]))
        session = merged.session()
        for index in available_indices():
            np.testing.assert_allclose(
                session.dispersion_matrix(index),
                reference.dispersion_matrix(index),
                rtol=0, atol=TOLERANCE, equal_nan=True)

    def test_merge_leaves_operands_usable(self, eager):
        events, _, _ = eager
        half = len(events) // 2
        left = OnlineAccumulator().update(events[:half])
        right = OnlineAccumulator().update(events[half:])
        before = dict(left._sums)
        left.merge(right)
        assert left._sums == before          # merge is non-mutating
        assert left.n_events == half


class TestFileDriver:
    """The whole streaming path — file, iterator, shard driver."""

    @pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz", ".rptb"])
    def test_stream_from_file_matches_profile(self, eager, tmp_path,
                                              suffix):
        events, reference, _ = eager
        path = tmp_path / f"t{suffix}"
        if suffix == ".rptb":
            write_binary_trace(path, events)
        else:
            write_trace(path, events)
        accumulator = OnlineAccumulator().consume(
            iter_any(path, chunk_size=500))
        streamed = accumulator.finalize()
        assert streamed.regions == reference.regions
        assert np.array_equal(streamed.times, reference.times)

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_shard_accumulate_matches_profile(self, eager, tmp_path,
                                              n_shards):
        events, reference, _ = eager
        path = tmp_path / "t.jsonl"
        write_trace(path, events)
        merged = shard_accumulate(path, jobs=1, n_shards=n_shards,
                                  chunk_size=256)
        assert_measurements_close(merged.finalize(), reference)

    def test_shard_accumulate_with_workers(self, eager, tmp_path):
        events, reference, _ = eager
        path = tmp_path / "t.rptb"
        write_binary_trace(path, events)
        merged = shard_accumulate(path, jobs=2, chunk_size=512)
        assert_measurements_close(merged.finalize(), reference)


class TestWindowedDifferential:
    @pytest.mark.parametrize("n_windows", [1, 4, 9])
    def test_windowed_accumulator_matches_window_profiles(self, cfd_run,
                                                          n_windows):
        _, tracer, _ = cfd_run
        expected = window_profiles(tracer, n_windows=n_windows)
        layout = profile(tracer)
        edges = equal_edges(tracer.begin, tracer.elapsed, n_windows)
        binner = WindowedAccumulator(edges, layout.regions,
                                     layout.activities, tracer.n_ranks)
        for chunk in chunked(list(tracer.events), 333):
            binner.update(chunk)
        got = binner.finalize()
        assert len(got) == len(expected)
        for mine, theirs in zip(got, expected):
            assert mine.begin == theirs.begin
            assert mine.end == theirs.end
            assert np.array_equal(mine.measurements.times,
                                  theirs.measurements.times)
            assert mine.measurements.total_time \
                == theirs.measurements.total_time

    def test_windowed_merge_agrees(self, cfd_run):
        _, tracer, _ = cfd_run
        events = list(tracer.events)
        layout = profile(tracer)
        edges = equal_edges(tracer.begin, tracer.elapsed, 6)

        def binner(part):
            return WindowedAccumulator(edges, layout.regions,
                                       layout.activities,
                                       tracer.n_ranks).update(part)

        half = len(events) // 2
        merged = binner(events[:half]).merge(binner(events[half:]))
        whole = binner(events)
        for mine, theirs in zip(merged.finalize(), whole.finalize()):
            np.testing.assert_allclose(mine.measurements.times,
                                       theirs.measurements.times,
                                       rtol=0, atol=TOLERANCE)
