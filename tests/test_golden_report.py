"""Golden-file regression test: the full report of the reconstructed
paper dataset must stay byte-identical.

The reconstruction, the analysis and the rendering are all
deterministic, so any diff here means a behaviour change in one of
them; update `docs/paper_report.txt` deliberately if the change is
intended (`python -c "..."` recipe in the file's git history).
"""

from pathlib import Path

from repro.core import analyze, render_full_report

GOLDEN = Path(__file__).resolve().parent.parent / "docs" / "paper_report.txt"


def test_paper_report_matches_golden_file(paper_measurements):
    rendered = render_full_report(analyze(paper_measurements)) + "\n"
    assert rendered == GOLDEN.read_text(), (
        "rendered report drifted from docs/paper_report.txt; "
        "regenerate the golden file if the change is intentional")
