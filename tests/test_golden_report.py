"""Golden-file regression test: the full report of the reconstructed
paper dataset must stay byte-identical.

The reconstruction, the analysis and the rendering are all
deterministic, so any diff here means a behaviour change in one of
them; update `docs/paper_report.txt` deliberately if the change is
intended (`python -c "..."` recipe in the file's git history).

The batch-engine variants below pin the vectorized rewire: the session
path, the batch-backed views, and the scalar reference loop must all
render the very same bytes — the engine may change *how* Tables 1–4
are computed, never a single published number.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import (AnalysisSession, BatchAnalysis, analyze,
                        batch_dispersion_matrix, render_full_report,
                        scalar_dispersion_matrix)

GOLDEN = Path(__file__).resolve().parent.parent / "docs" / "paper_report.txt"


def test_paper_report_matches_golden_file(paper_measurements):
    rendered = render_full_report(analyze(paper_measurements)) + "\n"
    assert rendered == GOLDEN.read_text(), (
        "rendered report drifted from docs/paper_report.txt; "
        "regenerate the golden file if the change is intentional")


def test_session_report_matches_golden_file(paper_measurements):
    """The memoized session path renders the same bytes."""
    session = AnalysisSession(paper_measurements)
    assert session.report() + "\n" == GOLDEN.read_text()
    # render_full_report(session) reuses the cached text verbatim.
    assert render_full_report(session) is session.report()


def test_batch_and_scalar_render_identically(paper_measurements):
    """Byte-compare the report built from the batch engine's matrix
    against one built from the scalar reference loop: the vectorized
    rewire changes no published number."""
    from repro.core.views import compute_activity_and_region_views

    def render(matrix):
        activity_view, _ = compute_activity_and_region_views(
            paper_measurements, dispersion=matrix)
        from repro.core.report import render_dispersion_table
        return render_dispersion_table(activity_view)

    batch_table = render(batch_dispersion_matrix(paper_measurements))
    scalar_table = render(scalar_dispersion_matrix(paper_measurements))
    assert batch_table == scalar_table
    assert batch_table in GOLDEN.read_text()


def test_batch_matrix_nan_pattern_matches_paper_dashes(paper_measurements):
    """Dash cells in Table 2 are exactly the nan entries of the batch
    matrix."""
    matrix = BatchAnalysis(paper_measurements).matrix("euclidean")
    assert np.array_equal(np.isnan(matrix),
                          ~paper_measurements.performed)


@pytest.fixture(scope="module")
def paper_trace(tmp_path_factory, paper_measurements):
    """A trace whose profile *is* the paper's measurement set.

    Synthesized by :func:`repro.calibrate.synthesize_paper_trace` (one
    event per performed cell, region-major, plus a rank-0
    outside-region span pinning elapsed time to the paper's ``T``) —
    the same trace the service-smoke CI job and the serving benchmarks
    feed the daemon.
    """
    from repro.calibrate import synthesize_paper_trace

    path = tmp_path_factory.mktemp("paper") / "paper.jsonl"
    n_events = synthesize_paper_trace(path, paper_measurements)
    assert n_events == 289
    return str(path)


def test_streamed_analyze_renders_the_golden_bytes(paper_trace, capsys):
    """`repro analyze --stream` on the paper trace must print the very
    bytes of docs/paper_report.txt — the streaming engine changes *how*
    the tables are computed, never a single published number."""
    from repro.cli import main
    assert main(["analyze", paper_trace, "--stream"]) == 0
    assert capsys.readouterr().out == GOLDEN.read_text()


def test_sharded_analyze_renders_the_golden_bytes(paper_trace, capsys):
    """The sharded map-reduce path renders the same bytes: the report
    rounds far above the summation-tree difference of merged shards."""
    from repro.cli import main
    assert main(["analyze", paper_trace, "--stream", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == GOLDEN.read_text()


def test_streamed_and_eager_cli_agree_on_the_paper_trace(paper_trace,
                                                         capsys):
    from repro.cli import main
    assert main(["analyze", paper_trace]) == 0
    eager = capsys.readouterr().out
    assert main(["analyze", paper_trace, "--stream",
                 "--chunk-size", "64"]) == 0
    assert capsys.readouterr().out == eager == GOLDEN.read_text()
