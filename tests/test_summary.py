"""Tests for the per-rank utilization summary."""

import pytest

from repro.errors import TraceError
from repro.instrument import Tracer, render_utilization, utilization


def make_tracer():
    tracer = Tracer()
    tracer.record(0, "r", "computation", 0.0, 0.6)
    tracer.record(0, "r", "point-to-point", 0.6, 1.0, kind="send")
    tracer.record(1, "r", "computation", 0.0, 0.5)   # idles from 0.5 to 1.0
    return tracer


class TestUtilization:
    def test_shares(self):
        summaries = utilization(make_tracer())
        rank0 = summaries[0]
        assert rank0.shares["computation"] == pytest.approx(0.6)
        assert rank0.shares["point-to-point"] == pytest.approx(0.4)
        assert rank0.idle == pytest.approx(0.0)
        assert rank0.busy == pytest.approx(1.0)

    def test_idle_share_from_early_finish(self):
        summaries = utilization(make_tracer())
        rank1 = summaries[1]
        assert rank1.idle == pytest.approx(0.5)
        assert rank1.shares["computation"] == pytest.approx(0.5)

    def test_covers_all_ranks(self):
        tracer = make_tracer()
        tracer.record(3, "r", "computation", 0.0, 1.0)   # rank 2 missing
        summaries = utilization(tracer)
        assert len(summaries) == 4
        assert summaries[2].idle == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            utilization(Tracer())

    def test_render(self):
        text = render_utilization(make_tracer())
        assert "rank" in text and "idle" in text
        assert "60.0%" in text

    def test_simulator_traces_have_no_idle_before_finish(self, cfd_run):
        """The engine's traces are gap-free: any idle share comes only
        from ranks finishing before the global end."""
        _, tracer, _ = cfd_run
        summaries = utilization(tracer)
        # Barrier-terminated programs end nearly together.
        assert max(summary.idle for summary in summaries) < 0.05
