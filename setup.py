"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs PEP 660 (wheel) support; this offline
environment lacks it, so `python setup.py develop` is the supported
editable install path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
