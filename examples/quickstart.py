"""Quickstart: simulate a small message-passing program and analyze it.

Run:  python examples/quickstart.py

Shows the minimal workflow:

1. write a rank program (a generator using ``yield from comm....``);
2. run it on the simulated machine with a tracer attached;
3. aggregate the trace into the ``t_ijp`` measurement tensor;
4. run the paper's top-down methodology and print the report.
"""

from repro import Simulator, analyze, profile, render_full_report
from repro.instrument import Tracer


def program(comm):
    """Three phases; the 'solve' phase gives rank 2 fifty percent more
    work, which the analysis should localize."""
    with comm.region("setup"):
        yield from comm.compute(2e-3)
        yield from comm.bcast(0, nbytes=32 * 1024)

    with comm.region("solve"):
        work = 10e-3 * (1.5 if comm.rank == 2 else 1.0)
        yield from comm.compute(work)
        yield from comm.allreduce(nbytes=8 * 1024)
        yield from comm.barrier()

    with comm.region("output"):
        yield from comm.compute(1e-3)
        yield from comm.gather(0, nbytes=64 * 1024)


def main() -> None:
    tracer = Tracer()
    simulator = Simulator(n_ranks=8, trace_sink=tracer.record)
    result = simulator.run(program)
    print(f"simulated elapsed time: {result.elapsed * 1e3:.2f} ms, "
          f"{result.messages} messages\n")

    measurements = profile(tracer)
    analysis = analyze(measurements, cluster_count=None)
    print(render_full_report(analysis))

    winner = analysis.processor_view.most_imbalanced_processor("solve")
    print(f"\n=> the most imbalanced processor in 'solve' is rank {winner} "
          "(we planted rank 2)")


if __name__ == "__main__":
    main()
