"""Scheduling policies and moving hotspots — two classic imbalance studies.

Run:  python examples/scheduling_policies.py

Part 1 — *static vs dynamic scheduling*.  The same irregular task farm
(quadratic cost ramp, like triangular solves) runs under a static block
partition and under master-worker self-scheduling.  The methodology
quantifies the repair: the worker dispersion collapses and the run gets
faster, at the cost of many small control messages.

Part 2 — *the AMR front*.  A refinement hotspot travels across the
ranks; averaged over the whole run every rank did the same work, so the
standard (whole-run) analysis sees nothing.  Windowed profiles recover
both the strong per-window imbalance and the hotspot's trajectory.
"""

import numpy as np

from repro.apps import (AMRConfig, TaskFarm, run_amr, run_master_worker,
                        worker_imbalance)
from repro.core import dispersion_matrix
from repro.instrument import window_profiles
from repro.viz import format_table


def scheduling_study() -> str:
    farm = TaskFarm(tasks=256, chunk=4)
    rows = []
    for policy in ("static", "dynamic"):
        result, _, measurements = run_master_worker(farm, 16, policy)
        rows.append([policy,
                     f"{worker_imbalance(measurements):.4f}",
                     f"{result.elapsed:.4f}",
                     str(result.messages)])
    return format_table(
        ["policy", "worker dispersion", "elapsed (s)", "messages"], rows,
        title="Static blocks vs dynamic self-scheduling (P = 16)")


def amr_study() -> str:
    _, tracer, measurements = run_amr(AMRConfig(steps=12), n_ranks=12)
    matrix = dispersion_matrix(measurements)
    comp = measurements.activity_index("computation")
    solve = measurements.region_index("solve")
    rows = []
    for index, window in enumerate(window_profiles(tracer, 6,
                                                   regions=("solve",))):
        window_matrix = dispersion_matrix(window.measurements)
        j = window.measurements.activity_index("computation")
        winner = int(np.argmax(window.measurements.times[0, j, :]))
        rows.append([str(index + 1), f"{window_matrix[0, j]:.4f}",
                     f"rank {winner}"])
    table = format_table(["window", "solve dispersion", "hotspot"], rows,
                         title="AMR refinement front (12 ranks, 12 steps)")
    return (f"whole-run solve dispersion: {matrix[solve, comp]:.2e} "
            "(the moving hotspot averages away!)\n" + table)


def main() -> None:
    print(scheduling_study())
    print()
    print(amr_study())
    print("\nReading: dynamic self-scheduling removes work imbalance at "
          "the price of messages;\nthe AMR hotspot is invisible to "
          "whole-run analysis and obvious in windows.")


if __name__ == "__main__":
    main()
