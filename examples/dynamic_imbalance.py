"""Dynamic imbalance: drift detection and tuning validation.

Run:  python examples/dynamic_imbalance.py

Goes beyond the paper's single post-mortem profile, in the direction its
future-work section points (new criteria, more programs):

1. run the N-body workload, whose particles cluster toward rank 0 so
   the load *drifts* over time;
2. slice the trace into windows and run the temporal analysis — the
   'forces' region shows a clearly positive imbalance slope;
3. repair the program (periodic repartitioning), re-run, and validate
   the repair with the before/after comparison: the drift flattens and
   the program gets faster.
"""

from repro.apps import NBodyConfig, run_nbody
from repro.core import compare, render_comparison, temporal_analysis
from repro.instrument import window_profiles
from repro.viz import format_table

WINDOWS = 4
REGIONS = ("forces", "migrate", "diagnostics")


def trend_table(tracer, label):
    analysis = temporal_analysis(window_profiles(tracer, WINDOWS,
                                                 regions=REGIONS))
    rows = []
    for trend in analysis.trends:
        series = "  ".join(f"{value:.4f}" if value == value else "  -  "
                           for value in trend.series)
        rows.append([trend.region, series, f"{trend.slope:+.5f}"])
    drifting = ", ".join(analysis.drifting_regions()) or "none"
    return (format_table(["region", f"ID_C per window (1..{WINDOWS})",
                          "slope"], rows, title=label)
            + f"\ndrifting regions: {drifting}")


def main() -> None:
    drifting_config = NBodyConfig(steps=10)
    repaired_config = NBodyConfig(steps=10, rebalance_every=3)

    result_before, tracer_before, ms_before = run_nbody(drifting_config)
    print(trend_table(tracer_before,
                      "Without rebalancing (particles cluster on rank 0)"))
    print()

    result_after, tracer_after, ms_after = run_nbody(repaired_config)
    print(trend_table(tracer_after, "With repartitioning every 3 steps"))
    print()

    report = compare(ms_before, ms_after)
    print(render_comparison(report))
    print(f"\nwall clock: {result_before.elapsed:.4f} s -> "
          f"{result_after.elapsed:.4f} s")


if __name__ == "__main__":
    main()
