"""Capstone study: efficiency, diagnosis, what-if and attribution.

Run:  python examples/efficiency_study.py

Puts the whole toolbox on one program — the CFD workload with its
default injected imbalance:

1. strong-scaling efficiency factorization (PE = LB x CommE) over
   P = 4..32, separating imbalance losses from communication losses;
2. the automated diagnosis of the P = 16 run;
3. the what-if table: the absolute payoff of balancing each loop, and
   who (which processors) the excess belongs to;
4. the share heatmap, making the offenders visible.
"""

from repro.apps import CFDConfig, run_cfd
from repro.core import (analyze, balance_predictions, diagnose,
                        excess_by_processor, render_diagnosis,
                        render_efficiency_table, render_predictions,
                        scaling_analysis)
from repro.viz import render_heatmap


def scaling_study() -> str:
    runs = []
    for n_ranks in (4, 8, 16, 32):
        config = CFDConfig(grid=(128, 128), steps=2)
        result, _, measurements = run_cfd(config, n_ranks=n_ranks)
        runs.append((measurements, result.elapsed))
    return render_efficiency_table(scaling_analysis(runs))


def main() -> None:
    print(scaling_study())
    print()

    _, _, measurements = run_cfd()
    analysis = analyze(measurements)
    print(render_diagnosis(diagnose(analysis)))
    print()

    predictions = balance_predictions(measurements)
    print(render_predictions(predictions))
    top = predictions[0]
    attribution = excess_by_processor(measurements, top.region)
    offenders = ", ".join(f"rank {p}" for p in attribution.offenders(0.15))
    print(f"\n{top.region}'s excess belongs to: "
          + (offenders or "no single offender"))
    print()
    print(render_heatmap(measurements))


if __name__ == "__main__":
    main()
