"""Sweep injected imbalance and processor count; watch the indices react.

Run:  python examples/synthetic_sweep.py

Two experiments on the synthetic workload:

1. *Severity sweep* — a single straggler's work factor grows from 1.0
   (balanced) to 2.5; the kernel's index of dispersion, its scaled
   index, and the classic percent-imbalance baseline are tabulated.
   The index grows monotonically and saturates as the straggler
   dominates (the majorization maximum).
2. *Scale sweep* — the same relative imbalance on 4..64 processors: a
   single straggler matters less and less (its standardized share
   approaches the balanced 1/P), yet the processor view still pins it
   at every scale.
"""

import numpy as np

from repro.apps import Straggler, imbalance_sweep_workload
from repro.baselines import percent_imbalance
from repro.core import analyze
from repro.viz import format_table


def severity_sweep() -> str:
    rows = []
    for factor in (1.0, 1.2, 1.5, 1.8, 2.1, 2.5):
        workload = imbalance_sweep_workload(
            Straggler(rank=3, factor_value=factor))
        _, _, measurements = workload.run(8)
        analysis = analyze(measurements, cluster_count=None)
        kernel = measurements.region_index("kernel")
        comp = measurements.activity_index("computation")
        times = measurements.times[kernel, comp, :]
        rows.append([
            f"{factor:.1f}",
            f"{analysis.region_view.index[kernel]:.5f}",
            f"{analysis.region_view.scaled_index[kernel]:.5f}",
            f"{percent_imbalance(times):.3f}",
        ])
    return format_table(
        ["straggler factor", "ID_C(kernel)", "SID_C(kernel)",
         "percent imbalance"], rows,
        title="Severity sweep (P = 8, straggler on rank 3)")


def scale_sweep() -> str:
    rows = []
    for n_ranks in (4, 8, 16, 32, 64):
        workload = imbalance_sweep_workload(
            Straggler(rank=1, factor_value=1.8))
        _, _, measurements = workload.run(n_ranks)
        analysis = analyze(measurements, cluster_count=None)
        kernel = measurements.region_index("kernel")
        winner = analysis.processor_view.most_imbalanced_processor("kernel")
        rows.append([
            str(n_ranks),
            f"{analysis.region_view.index[kernel]:.5f}",
            f"rank {winner}",
        ])
    return format_table(["P", "ID_C(kernel)", "flagged processor"], rows,
                        title="Scale sweep (straggler factor 1.8, rank 1)")


def main() -> None:
    print(severity_sweep())
    print()
    print(scale_sweep())
    print("\nReading: the index of dispersion rises monotonically with the "
          "injected severity,\nand the processor view pins the planted "
          "straggler at every scale.")


if __name__ == "__main__":
    main()
