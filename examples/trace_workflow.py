"""Post-mortem workflow: trace to disk, analyze later.

Run:  python examples/trace_workflow.py

The paper's methodology is post mortem: monitoring happens during the
run, analysis afterwards, possibly elsewhere.  This example performs the
full round trip:

1. run the CFD workload with a tracer attached;
2. write the trace to a compressed trace file;
3. (later / elsewhere) read the file back, rebuild the profile;
4. analyze and print the findings — byte-identical to analyzing live.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import analyze, profile
from repro.apps import LOOPS, CFDConfig, run_cfd
from repro.instrument import read_tracer, write_tracer


def main() -> None:
    # -- during the run ------------------------------------------------
    config = CFDConfig(grid=(128, 128), steps=2)
    result, tracer, live_measurements = run_cfd(config)
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "cfd-run.trace.jsonl.gz"
        count = write_tracer(path, tracer)
        size_kb = path.stat().st_size / 1024
        print(f"wrote {count} events ({size_kb:.0f} KiB compressed) "
              f"to {path.name}")

        # -- later, post mortem ---------------------------------------
        recovered = read_tracer(path)
        measurements = profile(recovered, regions=LOOPS)

    assert np.allclose(measurements.times, live_measurements.times)
    print("profile rebuilt from disk matches the live profile exactly\n")

    analysis = analyze(measurements)
    print(f"program wall clock: {measurements.total_time:.3f} s")
    print(f"dominant activity: {analysis.breakdown.dominant_activity}")
    print(f"heaviest region: {analysis.breakdown.heaviest_region} "
          f"({analysis.breakdown.heaviest_region_share:.1%})")
    print(f"most imbalanced region: {analysis.region_view.most_imbalanced()}")
    print(f"tuning candidates: {', '.join(analysis.tuning_candidates)}")


if __name__ == "__main__":
    main()
