"""Analyze a fresh simulated execution of the CFD workload.

Run:  python examples/cfd_analysis.py

This is the paper's experiment re-run on our own 'machine': the
CFD-style solver executes on the simulated 16-processor system, the
tracer records every interval, and the methodology produces the same
kind of report the paper builds from its IBM SP2 measurements.  The
Paradyn-style threshold search runs alongside to show the blind spot
the paper's methodology closes.
"""

from repro import analyze, render_full_report
from repro.apps import CFDConfig, run_cfd
from repro.baselines import search
from repro.viz import render_pattern_grid


def main() -> None:
    config = CFDConfig()           # 256x256 grid, 4 steps, 16 ranks
    result, tracer, measurements = run_cfd(config)
    print(f"simulated wall clock: {result.elapsed:.3f} s, "
          f"{result.messages} messages, "
          f"{result.bytes_moved / 1e6:.1f} MB moved, "
          f"{len(tracer)} trace events\n")

    analysis = analyze(measurements)
    print(render_full_report(analysis))

    print("\nComputation patterns (cf. the paper's Figure 1):")
    print(render_pattern_grid(analysis.pattern("computation")))

    print("\nParadyn-style threshold search on the same profile:")
    baseline = search(measurements)
    flagged = baseline.flagged_regions()
    print(f"  {baseline.tested} hypotheses tested, "
          f"{len(flagged)} (activity, region) pairs flagged:")
    for activity, region in flagged:
        print(f"    {activity:15s} in {region}")
    refined = {h.focus[0] for h in baseline.hypotheses
               if h.level != "program"}
    missing = set(measurements.activities) - refined
    print(f"  never refined (below the time-share threshold): "
          f"{', '.join(sorted(missing)) or 'none'}")
    print("  -> the methodology instead ranks "
          f"{analysis.activity_view.most_imbalanced()} as the most "
          "imbalanced activity, while correctly discounting it once "
          "scaled by its share of the wall clock.")


if __name__ == "__main__":
    main()
