"""Reproduce every table and figure of the paper's application example.

Run:  python examples/paper_reproduction.py

Reconstructs the PACT 2003 dataset (the original tracefile is lost; the
reconstruction satisfies every published aggregate — see
repro/calibrate/reconstruct.py), then regenerates Tables 1-4, Figures
1-2 and the §4 narrative, printing paper-vs-ours side by side.
"""

import numpy as np

from repro.calibrate import paper_data, reconstruct, verify
from repro.core import (analyze, pattern_grid, render_breakdown_table,
                        render_dispersion_table)
from repro.viz import format_table, render_pattern_grid


def table3_comparison(view) -> str:
    rows = [[activity,
             f"{paper_data.TABLE_3_ID_A[activity]:.5f}",
             f"{view.index[j]:.5f}",
             f"{paper_data.TABLE_3_SID_A[activity]:.5f}",
             f"{view.scaled_index[j]:.5f}"]
            for j, activity in enumerate(view.activities)]
    return format_table(["activity", "ID_A paper", "ID_A ours",
                         "SID_A paper", "SID_A ours"], rows,
                        title="Table 3 — activity view")


def table4_comparison(view) -> str:
    rows = [[region,
             f"{paper_data.TABLE_4_ID_C[region]:.5f}",
             f"{view.index[i]:.5f}",
             f"{paper_data.TABLE_4_SID_C[region]:.5f}",
             f"{view.scaled_index[i]:.5f}"]
            for i, region in enumerate(view.regions)]
    return format_table(["region", "ID_C paper", "ID_C ours",
                         "SID_C paper", "SID_C ours"], rows,
                        title="Table 4 — code region view")


def main() -> None:
    measurements = reconstruct()
    report = verify(measurements)
    print("Reconstruction constraint check:")
    print(report.describe())
    assert report.passed

    print("\n" + render_breakdown_table(measurements))

    analysis = analyze(measurements)
    print("\n" + render_dispersion_table(analysis.activity_view))
    print("\n" + table3_comparison(analysis.activity_view))
    print("\n" + table4_comparison(analysis.region_view))

    print("\nFigure 1 —", end=" ")
    print(render_pattern_grid(pattern_grid(measurements, "computation")))
    print("\nFigure 2 —", end=" ")
    print(render_pattern_grid(pattern_grid(measurements, "point-to-point")))

    summary = analysis.processor_view.summary()
    print("\n§4 narrative:")
    print(f"  clusters: "
          + "; ".join("{" + ", ".join(g) + "}"
                      for g in analysis.region_clusters)
          + "   (paper: {loop 1, loop 2} vs the rest)")
    print(f"  most frequently imbalanced: processor "
          f"{summary.most_frequent + 1} on {summary.most_frequent_count} "
          f"loops (paper: processor 1 on loops 3 and 7)")
    print(f"  imbalanced for the longest time: processor "
          f"{summary.longest + 1}, {summary.longest_time:.2f} s "
          f"(paper: processor 2, 15.93 s)")
    loop1 = measurements.region_index("loop 1")
    id_p = analysis.processor_view.dispersion[loop1, 1]
    print(f"  processor 2's ID_P on loop 1: {id_p:.5f} (paper: 0.25754)")
    print(f"  most imbalanced activity: "
          f"{analysis.activity_view.most_imbalanced()} "
          "(paper: synchronization, negligible once scaled)")
    print(f"  most imbalanced region: "
          f"{analysis.region_view.most_imbalanced()} (paper: loop 6)")
    print(f"  tuning candidate: {analysis.tuning_candidates[0]} "
          "(paper: loop 1)")


if __name__ == "__main__":
    main()
